//! K-coverage measurement on a sampling lattice.
//!
//! Section 5.2 of the paper defines *K-coverage* as "the percentage of the
//! field size monitored by at least K working nodes". We measure it the way
//! the paper's simulator must have: lay a lattice of sample points over the
//! field, count for each point the working nodes within the sensing range,
//! and report the fraction of points with count ≥ K.

use crate::field::Field;
use crate::point::Point;

/// A reusable lattice of sample points for coverage measurements.
///
/// # Examples
///
/// ```
/// use peas_geom::{CoverageGrid, Field, Point};
///
/// let grid = CoverageGrid::new(Field::new(20.0, 20.0), 1.0);
/// // One node in the center with sensing range 30 m covers everything.
/// let cov = grid.k_coverage(&[Point::new(10.0, 10.0)], 30.0, 1);
/// assert_eq!(cov, 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct CoverageGrid {
    field: Field,
    resolution: f64,
    cols: usize,
    rows: usize,
    /// Cell-center x coordinate per column (structure-of-arrays): the flat
    /// kernels and the CSR builder read the same table, so their membership
    /// predicates are evaluated on bitwise-identical coordinates.
    xs: Vec<f64>,
    /// Cell-center y coordinate per row.
    ys: Vec<f64>,
}

impl CoverageGrid {
    /// Creates a lattice with `resolution` meters between sample points.
    ///
    /// Sample points sit at cell centers: `((i + ½)·res, (j + ½)·res)`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not strictly positive and finite.
    pub fn new(field: Field, resolution: f64) -> CoverageGrid {
        assert!(
            resolution.is_finite() && resolution > 0.0,
            "coverage resolution must be positive, got {resolution}"
        );
        let cols = (field.width() / resolution).ceil().max(1.0) as usize;
        let rows = (field.height() / resolution).ceil().max(1.0) as usize;
        let xs = (0..cols).map(|i| (i as f64 + 0.5) * resolution).collect();
        let ys = (0..rows).map(|j| (j as f64 + 0.5) * resolution).collect();
        CoverageGrid {
            field,
            resolution,
            cols,
            rows,
            xs,
            ys,
        }
    }

    /// The number of sample points.
    pub fn sample_count(&self) -> usize {
        self.cols * self.rows
    }

    /// The underlying field.
    pub fn field(&self) -> Field {
        self.field
    }

    /// Per-sample-point counts of working nodes within `sensing_range`.
    ///
    /// Rasterizes one disc per working node, so the cost is
    /// O(workers · (range/resolution)²) rather than O(samples · workers).
    pub fn coverage_counts(&self, working: &[Point], sensing_range: f64) -> Vec<u32> {
        let mut counts = Vec::new();
        self.coverage_counts_into(working, sensing_range, &mut counts);
        counts
    }

    /// Like [`CoverageGrid::coverage_counts`], writing into a caller-owned
    /// buffer (cleared and resized first) so periodic measurements can reuse
    /// one allocation.
    ///
    /// Implemented as a chunked flat kernel (chunk = one lattice row): the
    /// working positions are split into structure-of-arrays x/y once, then
    /// each row accumulates branch-free squared-distance compares over the
    /// discs overlapping it — a shape the autovectorizer handles — instead
    /// of rasterizing one disc at a time. Produces exactly the counts the
    /// incremental [`CoverageGrid::add_disc`] path maintains (both evaluate
    /// the same predicate on the same precomputed cell centers).
    pub fn coverage_counts_into(
        &self,
        working: &[Point],
        sensing_range: f64,
        counts: &mut Vec<u32>,
    ) {
        counts.clear();
        counts.resize(self.sample_count(), 0);
        let r2 = sensing_range * sensing_range;
        // Structure-of-arrays split of the working set.
        let wx: Vec<f64> = working.iter().map(|w| w.x).collect();
        let wy: Vec<f64> = working.iter().map(|w| w.y).collect();
        let spans: Vec<(usize, usize)> = working
            .iter()
            .map(|w| self.col_span(w.x, sensing_range))
            .collect();
        for (j, &y) in self.ys.iter().enumerate() {
            let row = &mut counts[j * self.cols..(j + 1) * self.cols];
            for k in 0..wx.len() {
                let dy = y - wy[k];
                let dy2 = dy * dy;
                if dy2 > r2 {
                    continue;
                }
                let (lo_i, hi_i) = spans[k];
                let x0 = wx[k];
                for (c, &x) in row[lo_i..=hi_i].iter_mut().zip(&self.xs[lo_i..=hi_i]) {
                    let dx = x - x0;
                    *c += u32::from(dx * dx + dy2 <= r2);
                }
            }
        }
    }

    /// Rasterizes one node's sensing disc, incrementing the covered cells.
    ///
    /// Counts maintained by paired [`CoverageGrid::add_disc`] /
    /// [`CoverageGrid::remove_disc`] calls as nodes start and stop working
    /// are exactly the counts a full rasterization of the current working
    /// set would produce — integer increments commute — which is what lets
    /// the simulator keep coverage incrementally instead of re-scanning
    /// every working node at each sample.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != self.sample_count()`.
    pub fn add_disc(&self, w: Point, sensing_range: f64, counts: &mut [u32]) {
        self.disc_cells(w, sensing_range, counts, |c, m| *c += m);
    }

    /// Reverses one [`CoverageGrid::add_disc`] for a node that stopped
    /// working at the same position and range.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != self.sample_count()`, or (in debug builds,
    /// via overflow checks) if the disc was never added.
    pub fn remove_disc(&self, w: Point, sensing_range: f64, counts: &mut [u32]) {
        self.disc_cells(w, sensing_range, counts, |c, m| *c -= m);
    }

    /// Columns whose centers can fall inside a disc of `range` around `x`
    /// (a clamped bounding box; the squared-distance predicate decides
    /// actual membership).
    fn col_span(&self, x: f64, range: f64) -> (usize, usize) {
        let lo = (((x - range) / self.resolution - 0.5).floor()).max(0.0) as usize;
        let hi =
            ((((x + range) / self.resolution) as usize).max(lo)).min(self.cols.saturating_sub(1));
        (lo, hi)
    }

    /// Rows whose centers can fall inside a disc of `range` around `y`.
    fn row_span(&self, y: f64, range: f64) -> (usize, usize) {
        let lo = (((y - range) / self.resolution - 0.5).floor()).max(0.0) as usize;
        let hi =
            ((((y + range) / self.resolution) as usize).max(lo)).min(self.rows.saturating_sub(1));
        (lo, hi)
    }

    fn disc_cells(
        &self,
        w: Point,
        sensing_range: f64,
        counts: &mut [u32],
        mut apply: impl FnMut(&mut u32, u32),
    ) {
        assert_eq!(
            counts.len(),
            self.sample_count(),
            "counts buffer size mismatch"
        );
        let r2 = sensing_range * sensing_range;
        let (lo_i, hi_i) = self.col_span(w.x, sensing_range);
        let (lo_j, hi_j) = self.row_span(w.y, sensing_range);
        for j in lo_j..=hi_j {
            let dy = self.ys[j] - w.y;
            let dy2 = dy * dy;
            if dy2 > r2 {
                continue;
            }
            let row = j * self.cols;
            for (count, &x) in counts[row + lo_i..=row + hi_i]
                .iter_mut()
                .zip(&self.xs[lo_i..=hi_i])
            {
                let dx = x - w.x;
                // Branch-free: apply a 0/1 mask instead of a conditional.
                apply(count, u32::from(dx * dx + dy2 <= r2));
            }
        }
    }

    /// Collects the indices of the cells whose centers lie inside the disc
    /// of `sensing_range` around `w`, in row-major order, appending to
    /// `out`. This is the build step for [`CoverageCsr`]: the cell set is
    /// exactly the set [`CoverageGrid::add_disc`] would increment.
    pub fn disc_cells_into(&self, w: Point, sensing_range: f64, out: &mut Vec<u32>) {
        let r2 = sensing_range * sensing_range;
        let (lo_i, hi_i) = self.col_span(w.x, sensing_range);
        let (lo_j, hi_j) = self.row_span(w.y, sensing_range);
        for j in lo_j..=hi_j {
            let dy = self.ys[j] - w.y;
            let dy2 = dy * dy;
            if dy2 > r2 {
                continue;
            }
            let row = j * self.cols;
            for (i, &x) in self.xs[lo_i..=hi_i].iter().enumerate() {
                let dx = x - w.x;
                if dx * dx + dy2 <= r2 {
                    // peas-lint: allow(r3-unchecked-cast) -- sample indices are bounded by the grid size, validated below u32
                    out.push((row + lo_i + i) as u32);
                }
            }
        }
    }

    /// Fraction of the field monitored by at least `k` working nodes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (0-coverage is trivially 100%).
    pub fn k_coverage(&self, working: &[Point], sensing_range: f64, k: u32) -> f64 {
        assert!(k > 0, "k-coverage requires k >= 1");
        let counts = self.coverage_counts(working, sensing_range);
        let covered = counts.iter().filter(|&&c| c >= k).count();
        covered as f64 / counts.len() as f64
    }

    /// K-coverage for every `k` in `1..=max_k` from a single rasterization.
    ///
    /// Returns a vector `v` with `v[k-1]` = k-coverage. More efficient than
    /// calling [`CoverageGrid::k_coverage`] repeatedly; the simulator samples
    /// 3-, 4- and 5-coverage together (Fig 9).
    pub fn k_coverages(&self, working: &[Point], sensing_range: f64, max_k: u32) -> Vec<f64> {
        let mut counts = Vec::new();
        self.k_coverages_with(working, sensing_range, max_k, &mut counts)
    }

    /// Like [`CoverageGrid::k_coverages`], rasterizing into a caller-owned
    /// scratch buffer so periodic measurements can reuse one allocation.
    pub fn k_coverages_with(
        &self,
        working: &[Point],
        sensing_range: f64,
        max_k: u32,
        counts: &mut Vec<u32>,
    ) -> Vec<f64> {
        self.coverage_counts_into(working, sensing_range, counts);
        self.k_coverages_from_counts(counts, max_k)
    }

    /// K-coverage for every `k` in `1..=max_k` from already-computed
    /// per-cell counts (see [`CoverageGrid::add_disc`] for maintaining them
    /// incrementally).
    ///
    /// # Panics
    ///
    /// Panics if `max_k == 0` or `counts.len() != self.sample_count()`.
    pub fn k_coverages_from_counts(&self, counts: &[u32], max_k: u32) -> Vec<f64> {
        assert!(max_k > 0, "need at least k = 1");
        assert_eq!(
            counts.len(),
            self.sample_count(),
            "counts buffer size mismatch"
        );
        let total = counts.len() as f64;
        let mut hist = vec![0usize; max_k as usize + 1];
        for &c in counts.iter() {
            hist[(c.min(max_k)) as usize] += 1;
        }
        // Suffix sums: points with count >= k.
        let mut acc = 0usize;
        let mut at_least = vec![0usize; max_k as usize + 1];
        for k in (0..=max_k as usize).rev() {
            acc += hist[k];
            at_least[k] = acc;
        }
        (1..=max_k as usize)
            .map(|k| at_least[k] as f64 / total)
            .collect()
    }
}

/// Precomputed node→cell coverage rows for a static topology.
///
/// Built once per deployment, [`CoverageCsr`] stores each node's covered
/// cell indices as a compressed-sparse-row table (`offsets` + flat `cells`),
/// so maintaining per-cell coverage counts as nodes start and stop working
/// becomes a pure counter walk — no floating-point work, no disc
/// rasterization — on the hot mode-transition path. Memory is O(Σ degree):
/// one `u32` per (node, covered cell) pair.
///
/// # Examples
///
/// ```
/// use peas_geom::{CoverageCsr, CoverageGrid, Field, Point};
///
/// let grid = CoverageGrid::new(Field::new(20.0, 20.0), 1.0);
/// let nodes = [Point::new(10.0, 10.0), Point::new(3.0, 3.0)];
/// let csr = CoverageCsr::build(&grid, &nodes, 5.0);
/// let mut counts = vec![0u32; grid.sample_count()];
/// csr.add_into(0, &mut counts);
/// // The walk produces exactly what rasterizing the disc would.
/// assert_eq!(counts, grid.coverage_counts(&nodes[..1], 5.0));
/// csr.remove_into(0, &mut counts);
/// assert!(counts.iter().all(|&c| c == 0));
/// ```
#[derive(Clone, Debug)]
pub struct CoverageCsr {
    sample_count: usize,
    /// `offsets[i]..offsets[i + 1]` indexes node `i`'s covered cells.
    offsets: Vec<u32>,
    /// Covered cell indices, row-major within each node's row.
    cells: Vec<u32>,
}

impl CoverageCsr {
    /// Precomputes every node's covered-cell row on `grid` at
    /// `sensing_range`.
    ///
    /// # Panics
    ///
    /// Panics if `sensing_range` is not strictly positive and finite.
    ///
    /// Large topologies (≥ [`crate::par::PARALLEL_BUILD_THRESHOLD`] nodes)
    /// rasterize their rows on a bounded worker pool, in node-index chunks
    /// spliced back in chunk order — byte-identical to a serial build (see
    /// [`crate::par`] for the memory budget).
    pub fn build(grid: &CoverageGrid, positions: &[Point], sensing_range: f64) -> CoverageCsr {
        assert!(
            sensing_range.is_finite() && sensing_range > 0.0,
            "sensing range must be positive, got {sensing_range}"
        );
        let workers = crate::par::build_workers(positions.len());
        let chunks = crate::par::chunked_build(positions.len(), workers, |span| {
            let mut cells = Vec::new();
            let mut row_ends = Vec::with_capacity(span.len());
            for &p in &positions[span] {
                grid.disc_cells_into(p, sensing_range, &mut cells);
                row_ends.push(cells.len());
            }
            (cells, row_ends)
        });
        let total: usize = chunks.iter().map(|(c, _)| c.len()).sum();
        let _cap = u32::try_from(total)
            // peas-lint: allow(r1-unchecked-panic) -- u32 offsets are a deliberate CSR size cap; >4G cells means a misconfigured field
            .expect("more than u32::MAX covered cells");
        let mut offsets = Vec::with_capacity(positions.len() + 1);
        let mut cells = Vec::with_capacity(total);
        offsets.push(0);
        for (chunk_cells, row_ends) in chunks {
            let base = cells.len();
            cells.extend_from_slice(&chunk_cells);
            // peas-lint: allow(r3-unchecked-cast) -- base + end <= total, checked against u32 above
            offsets.extend(row_ends.iter().map(|&end| (base + end) as u32));
        }
        CoverageCsr {
            sample_count: grid.sample_count(),
            offsets,
            cells,
        }
    }

    /// Bytes of table payload: offsets plus one `u32` per (node, cell)
    /// pair. The scale bench reports this as part of the per-topology
    /// memory budget.
    pub fn memory_bytes(&self) -> usize {
        (self.offsets.len() + self.cells.len()) * std::mem::size_of::<u32>()
    }

    /// Number of nodes the table was built over.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total stored (node, cell) pairs — the O(Σ degree) memory footprint.
    pub fn cell_entry_count(&self) -> usize {
        self.cells.len()
    }

    /// The cell indices `node`'s sensing disc covers, in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn cells_covered_by(&self, node: usize) -> &[u32] {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.cells[lo..hi]
    }

    /// Increments the count of every cell `node` covers: the counter-walk
    /// equivalent of [`CoverageGrid::add_disc`] at the build position and
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `counts.len()` differs from the
    /// build grid's sample count.
    pub fn add_into(&self, node: usize, counts: &mut [u32]) {
        assert_eq!(
            self.sample_count,
            counts.len(),
            "counts buffer size mismatch"
        );
        for &c in self.cells_covered_by(node) {
            counts[c as usize] += 1;
        }
    }

    /// Reverses one [`CoverageCsr::add_into`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, `counts.len()` differs from the
    /// build grid's sample count, or (in debug builds, via overflow checks)
    /// the node was never added.
    pub fn remove_into(&self, node: usize, counts: &mut [u32]) {
        assert_eq!(
            self.sample_count,
            counts.len(),
            "counts buffer size mismatch"
        );
        for &c in self.cells_covered_by(node) {
            counts[c as usize] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> CoverageGrid {
        CoverageGrid::new(Field::new(20.0, 20.0), 1.0)
    }

    #[test]
    fn empty_working_set_means_zero_coverage() {
        assert_eq!(grid().k_coverage(&[], 10.0, 1), 0.0);
    }

    #[test]
    fn giant_range_covers_everything() {
        let g = grid();
        let cov = g.k_coverage(&[Point::new(10.0, 10.0)], 100.0, 1);
        assert_eq!(cov, 1.0);
    }

    #[test]
    fn coverage_fraction_matches_disc_area() {
        // One node centered in a large field: coverage ≈ π r² / area.
        let g = CoverageGrid::new(Field::new(100.0, 100.0), 0.5);
        let cov = g.k_coverage(&[Point::new(50.0, 50.0)], 10.0, 1);
        let expected = std::f64::consts::PI * 100.0 / 10_000.0;
        assert!(
            (cov - expected).abs() < 0.005,
            "measured {cov}, analytic {expected}"
        );
    }

    #[test]
    fn k2_requires_two_nodes() {
        let g = grid();
        let one = [Point::new(10.0, 10.0)];
        let two = [Point::new(10.0, 10.0), Point::new(10.0, 10.0)];
        assert_eq!(g.k_coverage(&one, 50.0, 2), 0.0);
        assert_eq!(g.k_coverage(&two, 50.0, 2), 1.0);
    }

    #[test]
    fn k_coverages_are_monotone_in_k() {
        let g = grid();
        let working: Vec<Point> = (0..10).map(|i| Point::new(2.0 * i as f64, 10.0)).collect();
        let covs = g.k_coverages(&working, 6.0, 5);
        assert_eq!(covs.len(), 5);
        for w in covs.windows(2) {
            assert!(
                w[0] >= w[1],
                "k-coverage must not increase with k: {covs:?}"
            );
        }
        // And each matches the individual computation.
        for (i, &c) in covs.iter().enumerate() {
            assert_eq!(c, g.k_coverage(&working, 6.0, i as u32 + 1));
        }
    }

    #[test]
    fn adding_a_worker_never_reduces_coverage() {
        let g = grid();
        let mut working = vec![Point::new(3.0, 3.0), Point::new(15.0, 12.0)];
        let before = g.k_coverage(&working, 5.0, 1);
        working.push(Point::new(9.0, 9.0));
        let after = g.k_coverage(&working, 5.0, 1);
        assert!(after >= before);
    }

    #[test]
    fn rasterized_counts_match_brute_force() {
        use peas_des::rng::SimRng;
        let g = CoverageGrid::new(Field::new(30.0, 30.0), 1.5);
        let mut rng = SimRng::new(77);
        let working: Vec<Point> = (0..40)
            .map(|_| Point::new(rng.range_f64(0.0, 30.0), rng.range_f64(0.0, 30.0)))
            .collect();
        let fast = g.coverage_counts(&working, 7.0);
        // Brute force over all sample points.
        let mut brute = vec![0u32; g.sample_count()];
        for j in 0..g.rows {
            for i in 0..g.cols {
                let p = Point::new((i as f64 + 0.5) * 1.5, (j as f64 + 0.5) * 1.5);
                brute[j * g.cols + i] = working.iter().filter(|w| w.within(p, 7.0)).count() as u32;
            }
        }
        assert_eq!(fast, brute);
    }

    #[test]
    fn incremental_discs_match_full_rasterization() {
        use peas_des::rng::SimRng;
        let g = CoverageGrid::new(Field::new(30.0, 30.0), 1.5);
        let mut rng = SimRng::new(5);
        let pts: Vec<Point> = (0..30)
            .map(|_| Point::new(rng.range_f64(0.0, 30.0), rng.range_f64(0.0, 30.0)))
            .collect();
        let mut counts = vec![0u32; g.sample_count()];
        for &p in &pts {
            g.add_disc(p, 6.0, &mut counts);
        }
        // Remove every other disc; the survivors' full rasterization and the
        // k-coverage derived from the residual counts must both agree.
        let mut kept = Vec::new();
        for (i, &p) in pts.iter().enumerate() {
            if i % 2 == 0 {
                g.remove_disc(p, 6.0, &mut counts);
            } else {
                kept.push(p);
            }
        }
        assert_eq!(counts, g.coverage_counts(&kept, 6.0));
        assert_eq!(
            g.k_coverages_from_counts(&counts, 3),
            g.k_coverages(&kept, 6.0, 3)
        );
    }

    #[test]
    fn sample_count_scales_with_resolution() {
        let coarse = CoverageGrid::new(Field::paper(), 5.0);
        let fine = CoverageGrid::new(Field::paper(), 1.0);
        assert_eq!(coarse.sample_count(), 100);
        assert_eq!(fine.sample_count(), 2500);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        let _ = grid().k_coverage(&[], 1.0, 0);
    }
}
