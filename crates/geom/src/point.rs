//! Points and distances on the 2-D sensor field.

use std::fmt;
use std::ops::{Add, Sub};

/// A point (or displacement) in the plane, in meters.
///
/// # Examples
///
/// ```
/// use peas_geom::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in meters.
    pub x: f64,
    /// Vertical coordinate in meters.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates in meters.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance — cheaper for range comparisons.
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Whether `other` lies within `range` meters (inclusive).
    pub fn within(self, other: Point, range: f64) -> bool {
        self.distance_squared(other) <= range * range
    }

    /// The midpoint between two points.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Whether both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}m, {:.2}m)", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Point {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_squared(b), 25.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(-3.5, 7.25);
        let b = Point::new(10.0, -2.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn within_is_inclusive() {
        let a = Point::ORIGIN;
        let b = Point::new(3.0, 0.0);
        assert!(a.within(b, 3.0));
        assert!(!a.within(b, 2.999));
    }

    #[test]
    fn midpoint_bisects() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(4.0, 6.0));
        assert_eq!(m, Point::new(2.0, 3.0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Point::new(1.0, 2.0);
        let d = Point::new(0.5, -0.5);
        assert_eq!((a + d) - d, a);
    }

    #[test]
    fn conversion_from_tuple() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
    }

    #[test]
    fn finiteness_check() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
