//! Precomputed CSR neighbor tables for static topologies.
//!
//! PEAS deployments are stationary: a node's position never changes after
//! deployment (paper Sections 3 and 5). Every spatial query the protocol
//! asks — "who hears a PROBE at range `Rp`?", "who is in data range?" — is
//! therefore answerable once, at world construction, instead of on every
//! broadcast. [`NeighborTables`] stores, for each *range class* the caller
//! uses, a compressed-sparse-row adjacency: two flat arrays (`offsets`,
//! `neighbors`) plus the per-edge true distance, so the per-broadcast work
//! collapses to one slice iteration with zero hashing and zero `sqrt`.
//!
//! ## Enumeration order
//!
//! Each node's row lists its neighbors in the *grid candidate order* of the
//! [`SpatialGrid`] the table was built from (bucket row-major, insertion
//! order within a bucket). That order is part of the radio medium's
//! determinism contract — random loss is drawn once per decodable receiver
//! in candidate order — so replaying a row reproduces the exact RNG stream
//! the live grid query would have produced.
//!
//! ## Memory
//!
//! O(Σ degree) per class: `node_count + 1` offsets plus one `u32` id and one
//! `f64` distance per directed edge. At the paper's densest setting
//! (480 nodes, 50 × 50 m, 10 m range) that is ≈ 29 k edges ≈ 350 KiB —
//! negligible next to the event queue.

use crate::grid::SpatialGrid;
use crate::par;
use crate::point::Point;

/// One range class's CSR adjacency.
#[derive(Clone, Debug, Default)]
struct Csr {
    /// `offsets[i]..offsets[i + 1]` indexes node `i`'s row.
    offsets: Vec<u32>,
    /// Neighbor ids, concatenated per node in grid candidate order.
    neighbors: Vec<u32>,
    /// True Euclidean distance of each edge, parallel to `neighbors`.
    distances: Vec<f64>,
}

/// Per-topology precomputed adjacency, one CSR table per range class.
///
/// # Examples
///
/// ```
/// use peas_geom::{Field, NeighborTables, Point, SpatialGrid};
///
/// let positions = vec![
///     Point::new(0.0, 0.0),
///     Point::new(3.0, 0.0),
///     Point::new(20.0, 0.0),
/// ];
/// let mut grid = SpatialGrid::new(Field::new(25.0, 25.0), 10.0);
/// for (i, &p) in positions.iter().enumerate() {
///     grid.insert(i, p);
/// }
/// let tables = NeighborTables::build(&grid, &positions, &[5.0, 25.0]);
/// assert_eq!(tables.neighbors(0, 0), &[1]); // only node 1 within 5 m
/// assert_eq!(tables.distances(0, 0), &[3.0]);
/// assert_eq!(tables.neighbors(1, 0).len(), 2); // everyone within 25 m
/// ```
#[derive(Clone, Debug)]
pub struct NeighborTables {
    node_count: usize,
    radii: Vec<f64>,
    tables: Vec<Csr>,
}

impl NeighborTables {
    /// Builds one CSR table per radius in `radii` over the static topology
    /// `positions`, enumerating each row from `grid`.
    ///
    /// `grid` must hold exactly the entries `(i, positions[i])`; rows then
    /// come out in the grid's documented candidate order. A node is never
    /// its own neighbor. Range comparison is inclusive (`dist <= radius`),
    /// matching [`SpatialGrid::within_entries`].
    ///
    /// # Panics
    ///
    /// Panics if any radius is not strictly positive and finite, or if the
    /// grid's entry count disagrees with `positions`.
    ///
    /// Large topologies (≥ [`par::PARALLEL_BUILD_THRESHOLD`] nodes) build
    /// their rows on a bounded worker pool, in node-index chunks spliced
    /// back in chunk order — the resulting tables are byte-identical to a
    /// serial build (see [`par`] for the memory budget).
    pub fn build(grid: &SpatialGrid, positions: &[Point], radii: &[f64]) -> NeighborTables {
        assert_eq!(
            grid.len(),
            positions.len(),
            "grid entries must mirror positions"
        );
        let workers = par::build_workers(positions.len());
        let tables = radii
            .iter()
            .map(|&radius| {
                assert!(
                    radius.is_finite() && radius > 0.0,
                    "neighbor radius must be positive, got {radius}"
                );
                // Per-chunk rows: edge lists plus chunk-local row ends.
                let chunks = par::chunked_build(positions.len(), workers, |span| {
                    let mut neighbors = Vec::new();
                    let mut distances = Vec::new();
                    let mut row_ends = Vec::with_capacity(span.len());
                    for i in span {
                        let p = positions[i];
                        for (j, q) in grid.within_entries(p, radius) {
                            if j == i {
                                continue;
                            }
                            // peas-lint: allow(r3-unchecked-cast) -- node indices are validated below the u32 id space
                            neighbors.push(j as u32);
                            distances.push(p.distance(q));
                        }
                        row_ends.push(neighbors.len());
                    }
                    (neighbors, distances, row_ends)
                });
                let total: usize = chunks.iter().map(|(n, _, _)| n.len()).sum();
                let _cap = u32::try_from(total)
                    // peas-lint: allow(r1-unchecked-panic) -- u32 offsets are a deliberate CSR size cap; >4G edges means a misconfigured scenario
                    .expect("more than u32::MAX edges in one class");
                let mut csr = Csr {
                    offsets: Vec::with_capacity(positions.len() + 1),
                    neighbors: Vec::with_capacity(total),
                    distances: Vec::with_capacity(total),
                };
                csr.offsets.push(0);
                // Splice in chunk order; each chunk buffer is freed as it is
                // consumed, so transient memory stays bounded.
                for (neighbors, distances, row_ends) in chunks {
                    let base = csr.neighbors.len();
                    csr.neighbors.extend_from_slice(&neighbors);
                    csr.distances.extend_from_slice(&distances);
                    csr.offsets
                        // peas-lint: allow(r3-unchecked-cast) -- base + end <= total, checked against u32 above
                        .extend(row_ends.iter().map(|&end| (base + end) as u32));
                }
                csr
            })
            .collect();
        NeighborTables {
            node_count: positions.len(),
            radii: radii.to_vec(),
            tables,
        }
    }

    /// Bytes of table payload across all classes: offsets plus per-edge id
    /// and distance. The scale bench reports this as part of the
    /// per-topology memory budget.
    pub fn memory_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                t.offsets.len() * std::mem::size_of::<u32>()
                    + t.neighbors.len() * std::mem::size_of::<u32>()
                    + t.distances.len() * std::mem::size_of::<f64>()
            })
            .sum()
    }

    /// Number of nodes the tables were built over.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The radii the classes were built for, in build order.
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// Index of the class built for exactly `radius`, if any.
    ///
    /// Exact `f64` equality is intentional: classes are keyed by the same
    /// configured constants the caller later queries with.
    pub fn class_index(&self, radius: f64) -> Option<usize> {
        self.radii.iter().position(|&r| r == radius)
    }

    /// Directed edge count of one class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn edge_count(&self, class: usize) -> usize {
        self.tables[class].neighbors.len()
    }

    fn row_bounds(&self, class: usize, node: usize) -> (usize, usize) {
        let csr = &self.tables[class];
        assert!(node < self.node_count, "node {node} out of range");
        (csr.offsets[node] as usize, csr.offsets[node + 1] as usize)
    }

    /// Ids of `node`'s neighbors in class `class`, in grid candidate order.
    ///
    /// # Panics
    ///
    /// Panics if `class` or `node` is out of range.
    pub fn neighbors(&self, class: usize, node: usize) -> &[u32] {
        let (lo, hi) = self.row_bounds(class, node);
        &self.tables[class].neighbors[lo..hi]
    }

    /// True distances to `node`'s neighbors, parallel to
    /// [`NeighborTables::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `class` or `node` is out of range.
    pub fn distances(&self, class: usize, node: usize) -> &[f64] {
        let (lo, hi) = self.row_bounds(class, node);
        &self.tables[class].distances[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;

    fn tables_for(positions: &[Point], radii: &[f64]) -> NeighborTables {
        let field = Field::new(50.0, 50.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        for (i, &p) in positions.iter().enumerate() {
            grid.insert(i, p);
        }
        NeighborTables::build(&grid, positions, radii)
    }

    #[test]
    fn rows_match_pairwise_distances() {
        use peas_des::rng::SimRng;
        let mut rng = SimRng::new(11);
        let positions: Vec<Point> = (0..120)
            .map(|_| Point::new(rng.range_f64(0.0, 50.0), rng.range_f64(0.0, 50.0)))
            .collect();
        let radii = [3.0, 10.0, 17.5];
        let t = tables_for(&positions, &radii);
        for (class, &r) in radii.iter().enumerate() {
            for i in 0..positions.len() {
                let mut fast: Vec<u32> = t.neighbors(class, i).to_vec();
                fast.sort_unstable();
                let mut brute: Vec<u32> = (0..positions.len())
                    .filter(|&j| j != i && positions[i].within(positions[j], r))
                    .map(|j| j as u32)
                    .collect();
                brute.sort_unstable();
                assert_eq!(fast, brute, "class {class} node {i}");
            }
        }
    }

    #[test]
    fn distances_are_exact() {
        let positions = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(6.0, 8.0),
        ];
        let t = tables_for(&positions, &[10.0]);
        let row: Vec<(u32, f64)> = t
            .neighbors(0, 0)
            .iter()
            .copied()
            .zip(t.distances(0, 0).iter().copied())
            .collect();
        let mut row = row;
        row.sort_by_key(|&(id, _)| id);
        assert_eq!(row, vec![(1, 5.0), (2, 10.0)]);
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let positions = [Point::new(5.0, 5.0), Point::new(12.0, 5.0)];
        let t = tables_for(&positions, &[7.0]);
        assert_eq!(t.neighbors(0, 0), &[1]);
        assert_eq!(t.neighbors(0, 1), &[0]);
        assert_eq!(t.distances(0, 0), &[7.0]);
        let just_out = tables_for(&positions, &[6.999]);
        assert!(just_out.neighbors(0, 0).is_empty());
    }

    #[test]
    fn rows_follow_grid_candidate_order() {
        // Two nodes in different buckets of a 10 m grid: the row must list
        // them bucket row-major, not id-sorted.
        let positions = [
            Point::new(25.0, 25.0), // center, bucket (2, 2)
            Point::new(25.0, 35.0), // bucket (2, 3) — later row
            Point::new(35.0, 25.0), // bucket (3, 2) — same row, later col
        ];
        let t = tables_for(&positions, &[15.0]);
        let field = Field::new(50.0, 50.0);
        let mut grid = SpatialGrid::new(field, 10.0);
        for (i, &p) in positions.iter().enumerate() {
            grid.insert(i, p);
        }
        let expected: Vec<u32> = grid
            .within(positions[0], 15.0)
            .filter(|&j| j != 0)
            .map(|j| j as u32)
            .collect();
        assert_eq!(t.neighbors(0, 0), expected.as_slice());
    }

    #[test]
    fn empty_class_list_is_fine() {
        let t = tables_for(&[Point::new(1.0, 1.0)], &[]);
        assert_eq!(t.radii(), &[] as &[f64]);
        assert_eq!(t.class_index(3.0), None);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn class_lookup_is_exact() {
        let t = tables_for(&[Point::new(1.0, 1.0)], &[3.0, 10.0]);
        assert_eq!(t.class_index(3.0), Some(0));
        assert_eq!(t.class_index(10.0), Some(1));
        assert_eq!(t.class_index(3.0000001), None);
        assert_eq!(t.edge_count(0), 0);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn non_positive_radius_rejected() {
        let _ = tables_for(&[Point::new(1.0, 1.0)], &[0.0]);
    }
}
