//! Spatial hash grid for O(1) expected-time range queries.
//!
//! Nodes never move after deployment (the paper assumes stationary sensors),
//! but which nodes are *working* changes constantly, so the simulator asks
//! range queries like "all node ids within `Rp` of p" thousands of times per
//! simulated second. A uniform bucket grid with cell size equal to the query
//! radius answers each such query by scanning at most 9 cells.

use crate::field::Field;
use crate::point::Point;

/// Uniform bucket grid over a [`Field`], mapping points to the ids stored
/// near them.
///
/// # Examples
///
/// ```
/// use peas_geom::{Field, Point, SpatialGrid};
///
/// let field = Field::new(50.0, 50.0);
/// let mut grid = SpatialGrid::new(field, 10.0);
/// grid.insert(0, Point::new(5.0, 5.0));
/// grid.insert(1, Point::new(40.0, 40.0));
/// let near: Vec<usize> = grid.within(Point::new(6.0, 6.0), 5.0).collect();
/// assert_eq!(near, vec![0]);
/// ```
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<(usize, Point)>>,
}

impl SpatialGrid {
    /// Creates a grid over `field` with the given `cell` size in meters.
    ///
    /// Choose `cell` close to the most common query radius.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive and finite.
    pub fn new(field: Field, cell: f64) -> SpatialGrid {
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell size must be positive, got {cell}"
        );
        let cols = (field.width() / cell).ceil().max(1.0) as usize;
        let rows = (field.height() / cell).ceil().max(1.0) as usize;
        SpatialGrid {
            cell,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
        }
    }

    fn bucket_index(&self, p: Point) -> usize {
        let cx = ((p.x / self.cell) as usize).min(self.cols - 1);
        let cy = ((p.y / self.cell) as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Inserts `id` at position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` has non-finite or negative coordinates.
    pub fn insert(&mut self, id: usize, p: Point) {
        assert!(
            p.is_finite() && p.x >= 0.0 && p.y >= 0.0,
            "bad position {p:?}"
        );
        let b = self.bucket_index(p);
        self.buckets[b].push((id, p));
    }

    /// Removes `id` at position `p`; returns `true` if it was present.
    pub fn remove(&mut self, id: usize, p: Point) -> bool {
        let b = self.bucket_index(p);
        let bucket = &mut self.buckets[b];
        if let Some(pos) = bucket.iter().position(|&(i, _)| i == id) {
            bucket.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Total number of stored entries.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Whether the grid holds no entries.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }

    /// Iterates over ids whose positions lie within `radius` of `center`
    /// (inclusive), in deterministic (bucket, insertion) order.
    pub fn within(&self, center: Point, radius: f64) -> impl Iterator<Item = usize> + '_ {
        self.within_entries(center, radius).map(|(id, _)| id)
    }

    /// Like [`SpatialGrid::within`] but yields `(id, position)` pairs.
    pub fn within_entries(
        &self,
        center: Point,
        radius: f64,
    ) -> impl Iterator<Item = (usize, Point)> + '_ {
        let r2 = radius * radius;
        self.candidate_buckets(center, radius)
            .flat_map(move |b| self.buckets[b].iter().copied())
            .filter(move |&(_, p)| p.distance_squared(center) <= r2)
    }

    /// Counts ids within `radius` of `center` without allocating.
    pub fn count_within(&self, center: Point, radius: f64) -> usize {
        self.within(center, radius).count()
    }

    /// Indices of the buckets overlapping the query disc's bounding box.
    fn candidate_buckets(&self, center: Point, radius: f64) -> impl Iterator<Item = usize> + '_ {
        let lo_x = ((center.x - radius) / self.cell).floor().max(0.0) as usize;
        let lo_y = ((center.y - radius) / self.cell).floor().max(0.0) as usize;
        let hi_x = (((center.x + radius) / self.cell) as usize).min(self.cols - 1);
        let hi_y = (((center.y + radius) / self.cell) as usize).min(self.rows - 1);
        let cols = self.cols;
        (lo_y..=hi_y).flat_map(move |cy| (lo_x..=hi_x).map(move |cx| cy * cols + cx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with(points: &[(usize, Point)]) -> SpatialGrid {
        let mut g = SpatialGrid::new(Field::new(50.0, 50.0), 5.0);
        for &(id, p) in points {
            g.insert(id, p);
        }
        g
    }

    #[test]
    fn finds_points_in_range() {
        let g = grid_with(&[
            (0, Point::new(10.0, 10.0)),
            (1, Point::new(12.0, 10.0)),
            (2, Point::new(30.0, 30.0)),
        ]);
        let mut found: Vec<usize> = g.within(Point::new(11.0, 10.0), 3.0).collect();
        found.sort_unstable();
        assert_eq!(found, vec![0, 1]);
    }

    #[test]
    fn range_is_inclusive() {
        let g = grid_with(&[(0, Point::new(10.0, 10.0))]);
        assert_eq!(g.count_within(Point::new(13.0, 10.0), 3.0), 1);
        assert_eq!(g.count_within(Point::new(13.01, 10.0), 3.0), 0);
    }

    #[test]
    fn query_across_cell_boundaries() {
        // Points on either side of a cell boundary at x=5.
        let g = grid_with(&[(0, Point::new(4.9, 2.0)), (1, Point::new(5.1, 2.0))]);
        let found: Vec<usize> = g.within(Point::new(5.0, 2.0), 0.5).collect();
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn remove_works_and_reports_absence() {
        let mut g = grid_with(&[(7, Point::new(1.0, 1.0))]);
        assert!(g.remove(7, Point::new(1.0, 1.0)));
        assert!(!g.remove(7, Point::new(1.0, 1.0)));
        assert!(g.is_empty());
    }

    #[test]
    fn boundary_points_are_stored() {
        let g = grid_with(&[(0, Point::new(50.0, 50.0)), (1, Point::new(0.0, 0.0))]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.count_within(Point::new(50.0, 50.0), 0.1), 1);
        assert_eq!(g.count_within(Point::new(0.0, 0.0), 0.1), 1);
    }

    #[test]
    fn matches_brute_force() {
        use peas_des::rng::SimRng;
        let mut rng = SimRng::new(42);
        let points: Vec<(usize, Point)> = (0..300)
            .map(|i| {
                (
                    i,
                    Point::new(rng.range_f64(0.0, 50.0), rng.range_f64(0.0, 50.0)),
                )
            })
            .collect();
        let g = grid_with(&points);
        for _ in 0..50 {
            let c = Point::new(rng.range_f64(0.0, 50.0), rng.range_f64(0.0, 50.0));
            let r = rng.range_f64(0.1, 15.0);
            let mut fast: Vec<usize> = g.within(c, r).collect();
            let mut brute: Vec<usize> = points
                .iter()
                .filter(|(_, p)| p.within(c, r))
                .map(|&(id, _)| id)
                .collect();
            fast.sort_unstable();
            brute.sort_unstable();
            assert_eq!(fast, brute);
        }
    }

    #[test]
    fn query_outside_field_is_clamped_not_panicking() {
        let g = grid_with(&[(0, Point::new(1.0, 1.0))]);
        assert_eq!(g.count_within(Point::new(-10.0, -10.0), 20.0), 1);
        assert_eq!(g.count_within(Point::new(100.0, 100.0), 10.0), 0);
    }
}
