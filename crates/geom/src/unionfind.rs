//! Disjoint-set forest (union-find) with path halving and union by size.
//!
//! Used by [`crate::connectivity`] to answer "is the working set connected"
//! in near-linear time over all edges of the communication graph.

/// A union-find structure over indices `0..n`.
///
/// # Examples
///
/// ```
/// use peas_geom::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` elements.
    pub fn new(n: usize) -> UnionFind {
        assert!(n <= u32::MAX as usize, "union-find limited to u32 indices");
        UnionFind {
            // peas-lint: allow(r3-unchecked-cast) -- n is asserted within u32 above
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the canonical representative of `x`'s set (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, x: usize) -> usize {
        // peas-lint: allow(r3-unchecked-cast) -- x indexes `parent`, whose length is asserted within u32
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        // peas-lint: allow(r3-unchecked-cast) -- ra indexes `parent`, whose length is asserted within u32
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root] as usize
    }

    /// Size of the largest set.
    pub fn largest_component(&mut self) -> usize {
        (0..self.len())
            .map(|i| {
                let r = self.find(i);
                self.size[r] as usize
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.component_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.component_count(), 4);
        assert_eq!(uf.component_size(2), 3);
    }

    #[test]
    fn connected_is_transitive() {
        let mut uf = UnionFind::new(10);
        uf.union(0, 5);
        uf.union(5, 9);
        assert!(uf.connected(0, 9));
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn chain_union_forms_one_component() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.largest_component(), n);
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }

    #[test]
    fn largest_component_among_several() {
        let mut uf = UnionFind::new(7);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(3, 4);
        assert_eq!(uf.largest_component(), 3);
    }
}
