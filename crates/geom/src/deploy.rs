//! Sensor deployment: generating node positions on the field.
//!
//! The paper deploys nodes "uniformly distributed in the field ... and
//! stationary once deployed" (Section 5.2). Section 4 ("Distribution of
//! deployed nodes") discusses uneven deployments, so we also provide grid
//! and clustered generators for the robustness experiments and ablations.

use peas_des::rng::SimRng;

use crate::field::Field;
use crate::point::Point;

/// A deployment strategy for placing `n` sensors on a [`Field`].
///
/// # Examples
///
/// ```
/// use peas_des::rng::SimRng;
/// use peas_geom::{Deployment, Field};
///
/// let field = Field::paper();
/// let mut rng = SimRng::new(1);
/// let positions = Deployment::Uniform.generate(field, 160, &mut rng);
/// assert_eq!(positions.len(), 160);
/// assert!(positions.iter().all(|&p| field.contains(p)));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Deployment {
    /// Independent uniform placement — the paper's evaluation setting.
    Uniform,
    /// A jittered square lattice: one node per lattice cell, uniformly
    /// placed inside it. Maximally even; used in ablations.
    JitteredGrid,
    /// Gaussian clusters around `centers` uniformly chosen cluster seeds,
    /// with the given standard deviation in meters. Models the uneven
    /// air-drop deployments Section 4 warns about.
    Clustered {
        /// Number of cluster seed points.
        centers: usize,
        /// Spread of each cluster, in meters.
        std_dev: f64,
    },
    /// Exactly these positions (tests and hand-crafted topologies). The
    /// requested count must match the number of positions.
    Explicit(Vec<Point>),
}

impl Deployment {
    /// Generates `n` stationary node positions inside `field`.
    ///
    /// # Panics
    ///
    /// Panics if a `Clustered` deployment has zero centers or a non-positive
    /// spread.
    pub fn generate(&self, field: Field, n: usize, rng: &mut SimRng) -> Vec<Point> {
        match *self {
            Deployment::Uniform => (0..n).map(|_| uniform_point(field, rng)).collect(),
            Deployment::JitteredGrid => jittered_grid(field, n, rng),
            Deployment::Explicit(ref positions) => {
                assert_eq!(
                    positions.len(),
                    n,
                    "explicit deployment has {} positions but {} were requested",
                    positions.len(),
                    n
                );
                assert!(
                    positions.iter().all(|&p| field.contains(p)),
                    "explicit deployment positions must lie within the field"
                );
                positions.clone()
            }
            Deployment::Clustered { centers, std_dev } => {
                assert!(
                    centers > 0,
                    "clustered deployment needs at least one center"
                );
                assert!(
                    std_dev.is_finite() && std_dev > 0.0,
                    "cluster spread must be positive"
                );
                let seeds: Vec<Point> = (0..centers).map(|_| uniform_point(field, rng)).collect();
                (0..n)
                    .map(|_| {
                        let seed = seeds[rng.index(seeds.len())];
                        let p =
                            Point::new(rng.normal(seed.x, std_dev), rng.normal(seed.y, std_dev));
                        field.clamp(p)
                    })
                    .collect()
            }
        }
    }
}

fn uniform_point(field: Field, rng: &mut SimRng) -> Point {
    Point::new(
        rng.range_f64(0.0, field.width()),
        rng.range_f64(0.0, field.height()),
    )
}

/// Places `n` nodes on an approximately square lattice with one node
/// jittered uniformly inside each cell; surplus cells (when the lattice has
/// more cells than nodes) are skipped uniformly.
fn jittered_grid(field: Field, n: usize, rng: &mut SimRng) -> Vec<Point> {
    if n == 0 {
        return Vec::new();
    }
    let aspect = field.width() / field.height();
    let rows = ((n as f64 / aspect).sqrt().ceil() as usize).max(1);
    let cols = n.div_ceil(rows);
    let cell_w = field.width() / cols as f64;
    let cell_h = field.height() / rows as f64;

    let mut cells: Vec<(usize, usize)> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (r, c)))
        .collect();
    rng.shuffle(&mut cells);
    cells.truncate(n);
    cells
        .into_iter()
        .map(|(r, c)| {
            Point::new(
                c as f64 * cell_w + rng.range_f64(0.0, cell_w),
                r as f64 * cell_h + rng.range_f64(0.0, cell_h),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fills_field() {
        let field = Field::paper();
        let mut rng = SimRng::new(3);
        let pts = Deployment::Uniform.generate(field, 800, &mut rng);
        assert_eq!(pts.len(), 800);
        assert!(pts.iter().all(|&p| field.contains(p)));
        // All four quadrants should receive nodes.
        let c = field.center();
        let quads = [
            pts.iter().filter(|p| p.x < c.x && p.y < c.y).count(),
            pts.iter().filter(|p| p.x >= c.x && p.y < c.y).count(),
            pts.iter().filter(|p| p.x < c.x && p.y >= c.y).count(),
            pts.iter().filter(|p| p.x >= c.x && p.y >= c.y).count(),
        ];
        assert!(quads.iter().all(|&q| q > 100), "quadrants {quads:?}");
    }

    #[test]
    fn uniform_is_reproducible_per_seed() {
        let field = Field::paper();
        let a = Deployment::Uniform.generate(field, 50, &mut SimRng::new(9));
        let b = Deployment::Uniform.generate(field, 50, &mut SimRng::new(9));
        assert_eq!(a, b);
        let c = Deployment::Uniform.generate(field, 50, &mut SimRng::new(10));
        assert_ne!(a, c);
    }

    #[test]
    fn jittered_grid_exact_count_and_bounds() {
        let field = Field::new(40.0, 20.0);
        let mut rng = SimRng::new(5);
        for n in [1, 7, 64, 100, 161] {
            let pts = Deployment::JitteredGrid.generate(field, n, &mut rng);
            assert_eq!(pts.len(), n);
            assert!(pts.iter().all(|&p| field.contains(p)));
        }
    }

    #[test]
    fn jittered_grid_is_more_even_than_uniform() {
        // Compare dispersion via min pairwise distance: the lattice should
        // avoid the very close pairs uniform placement produces.
        let field = Field::paper();
        let min_dist = |pts: &[Point]| {
            let mut best = f64::INFINITY;
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    best = best.min(pts[i].distance(pts[j]));
                }
            }
            best
        };
        let grid = Deployment::JitteredGrid.generate(field, 100, &mut SimRng::new(8));
        let unif = Deployment::Uniform.generate(field, 100, &mut SimRng::new(8));
        assert!(min_dist(&grid) > min_dist(&unif));
    }

    #[test]
    fn clustered_concentrates_mass() {
        let field = Field::paper();
        let mut rng = SimRng::new(7);
        let pts = Deployment::Clustered {
            centers: 2,
            std_dev: 2.0,
        }
        .generate(field, 400, &mut rng);
        assert_eq!(pts.len(), 400);
        assert!(pts.iter().all(|&p| field.contains(p)));
        // With tight clusters, the median distance to the nearest of the two
        // cluster modes is tiny compared to a uniform deployment: check that
        // most nodes sit within a few std-devs of *some* other 20 nodes.
        let close_pairs = |pts: &[Point], r: f64| {
            pts.iter()
                .map(|a| pts.iter().filter(|b| a.within(**b, r)).count() - 1)
                .filter(|&c| c >= 20)
                .count()
        };
        let clustered_dense = close_pairs(&pts, 4.0);
        let unif = Deployment::Uniform.generate(field, 400, &mut SimRng::new(7));
        let uniform_dense = close_pairs(&unif, 4.0);
        assert!(
            clustered_dense > uniform_dense * 2,
            "clustered {clustered_dense} vs uniform {uniform_dense}"
        );
    }

    #[test]
    fn zero_nodes_is_empty() {
        let field = Field::paper();
        let mut rng = SimRng::new(1);
        assert!(Deployment::Uniform.generate(field, 0, &mut rng).is_empty());
        assert!(Deployment::JitteredGrid
            .generate(field, 0, &mut rng)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one center")]
    fn clustered_rejects_zero_centers() {
        let _ = Deployment::Clustered {
            centers: 0,
            std_dev: 1.0,
        }
        .generate(Field::paper(), 10, &mut SimRng::new(1));
    }
}
