//! Connectivity of the working-node communication graph.
//!
//! Section 3 of the paper proves that PEAS yields an asymptotically
//! connected working set whenever the transmission range satisfies
//! `Rt ≥ (1 + √5)·Rp`. These helpers compute, for a concrete working set,
//! the quantities that theorem talks about: the communication graph's
//! connectivity, and each node's distance to its closest working neighbor
//! (Lemma 3.2 bounds the maximum of those by `(1 + √5)·Rp`).

use crate::field::Field;
use crate::grid::SpatialGrid;
use crate::point::Point;
use crate::unionfind::UnionFind;

/// The factor `1 + √5` from Theorem 3.1.
pub const CONNECTIVITY_FACTOR: f64 = 3.23606797749979; // 1 + sqrt(5)

/// Summary of a working set's communication graph at radius `Rt`.
#[derive(Clone, Debug, PartialEq)]
pub struct ConnectivityReport {
    /// Number of working nodes considered.
    pub node_count: usize,
    /// Number of connected components (0 for an empty set).
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Number of edges (pairs within `Rt`).
    pub edges: usize,
    /// For each node, the distance to its closest other working node;
    /// `None` when fewer than two nodes exist.
    pub max_nearest_neighbor: Option<f64>,
    /// Mean nearest-working-neighbor distance, `None` for < 2 nodes.
    pub mean_nearest_neighbor: Option<f64>,
}

impl ConnectivityReport {
    /// Whether the graph is connected (a single component, or trivially so).
    pub fn is_connected(&self) -> bool {
        self.components <= 1
    }
}

/// Analyzes the graph whose vertices are `nodes` and whose edges join pairs
/// at distance ≤ `radius`.
///
/// Cost is near-linear using a spatial grid; suitable to run at every
/// metric-sampling tick.
///
/// # Panics
///
/// Panics if `radius` is not strictly positive and finite, or any node has
/// negative/non-finite coordinates.
pub fn analyze(field: Field, nodes: &[Point], radius: f64) -> ConnectivityReport {
    assert!(
        radius.is_finite() && radius > 0.0,
        "connectivity radius must be positive, got {radius}"
    );
    let mut grid = SpatialGrid::new(field, radius);
    for (i, &p) in nodes.iter().enumerate() {
        grid.insert(i, p);
    }
    let mut uf = UnionFind::new(nodes.len());
    let mut edges = 0usize;
    let mut nearest = vec![f64::INFINITY; nodes.len()];
    for (i, &p) in nodes.iter().enumerate() {
        for (j, q) in grid.within_entries(p, radius) {
            if j == i {
                continue;
            }
            let d = p.distance(q);
            if d < nearest[i] {
                nearest[i] = d;
            }
            if j > i {
                edges += 1;
                uf.union(i, j);
            }
        }
    }
    // Nearest neighbor may be farther than `radius`; fall back to a scan for
    // nodes whose radius-disc was empty (rare in PEAS-dense sets).
    for i in 0..nodes.len() {
        if nearest[i].is_infinite() && nodes.len() > 1 {
            for (j, &q) in nodes.iter().enumerate() {
                if i != j {
                    nearest[i] = nearest[i].min(nodes[i].distance(q));
                }
            }
        }
    }
    let (max_nn, mean_nn) = if nodes.len() >= 2 {
        let max = nearest.iter().copied().fold(f64::MIN, f64::max);
        let mean = nearest.iter().sum::<f64>() / nodes.len() as f64;
        (Some(max), Some(mean))
    } else {
        (None, None)
    };
    ConnectivityReport {
        node_count: nodes.len(),
        components: uf.component_count(),
        largest_component: if nodes.is_empty() {
            0
        } else {
            uf.largest_component()
        },
        edges,
        max_nearest_neighbor: max_nn,
        mean_nearest_neighbor: mean_nn,
    }
}

/// Whether two specific nodes can reach each other over the radius graph.
pub fn reachable(field: Field, nodes: &[Point], radius: f64, a: usize, b: usize) -> bool {
    assert!(a < nodes.len() && b < nodes.len(), "indices out of range");
    if a == b {
        return true;
    }
    let mut grid = SpatialGrid::new(field, radius);
    for (i, &p) in nodes.iter().enumerate() {
        grid.insert(i, p);
    }
    let mut uf = UnionFind::new(nodes.len());
    for (i, &p) in nodes.iter().enumerate() {
        for (j, _) in grid.within_entries(p, radius) {
            if j > i {
                uf.union(i, j);
            }
        }
    }
    uf.connected(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Field {
        Field::new(50.0, 50.0)
    }

    #[test]
    fn empty_set_report() {
        let r = analyze(field(), &[], 10.0);
        assert_eq!(r.node_count, 0);
        assert_eq!(r.components, 0);
        assert_eq!(r.largest_component, 0);
        assert!(r.is_connected());
        assert_eq!(r.max_nearest_neighbor, None);
    }

    #[test]
    fn single_node_is_connected() {
        let r = analyze(field(), &[Point::new(5.0, 5.0)], 10.0);
        assert_eq!(r.components, 1);
        assert!(r.is_connected());
        assert_eq!(r.max_nearest_neighbor, None);
    }

    #[test]
    fn chain_within_radius_is_connected() {
        let nodes: Vec<Point> = (0..6).map(|i| Point::new(8.0 * i as f64, 0.0)).collect();
        let r = analyze(field(), &nodes, 10.0);
        assert!(r.is_connected());
        assert_eq!(r.edges, 5);
        assert_eq!(r.largest_component, 6);
        assert_eq!(r.max_nearest_neighbor, Some(8.0));
    }

    #[test]
    fn gap_splits_components() {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(40.0, 40.0),
        ];
        let r = analyze(field(), &nodes, 10.0);
        assert_eq!(r.components, 2);
        assert!(!r.is_connected());
        assert_eq!(r.largest_component, 2);
        // Isolated node's nearest neighbor found via fallback scan.
        let expected = Point::new(40.0, 40.0).distance(Point::new(5.0, 0.0));
        assert!((r.max_nearest_neighbor.unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn reachability_matches_components() {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(9.0, 0.0),
            Point::new(18.0, 0.0),
            Point::new(45.0, 45.0),
        ];
        assert!(reachable(field(), &nodes, 10.0, 0, 2));
        assert!(!reachable(field(), &nodes, 10.0, 0, 3));
        assert!(reachable(field(), &nodes, 10.0, 3, 3));
    }

    #[test]
    fn nearest_neighbor_stats() {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ];
        let r = analyze(field(), &nodes, 50.0);
        // nearest: node0 -> 3, node1 -> 3, node2 -> 4
        assert_eq!(r.max_nearest_neighbor, Some(4.0));
        let mean = (3.0 + 3.0 + 4.0) / 3.0;
        assert!((r.mean_nearest_neighbor.unwrap() - mean).abs() < 1e-12);
    }

    #[test]
    fn connectivity_factor_value() {
        assert!((CONNECTIVITY_FACTOR - (1.0 + 5.0f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn radius_edge_inclusive() {
        let nodes = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let r = analyze(field(), &nodes, 10.0);
        assert!(r.is_connected());
        assert_eq!(r.edges, 1);
    }
}
