//! Bounded-pool chunked execution for topology-table builds.
//!
//! [`NeighborTables`](crate::NeighborTables) and
//! [`CoverageCsr`](crate::CoverageCsr) builds are embarrassingly parallel
//! over node index, but their output order is part of the determinism
//! contract (grid candidate order within a row, node order across rows).
//! This module runs per-chunk builders on a bounded worker pool — the same
//! scoped-threads / shared-claim-counter pattern the sim `Runner` uses for
//! whole simulations — and returns the chunk outputs **in chunk order**, so
//! splicing them back together reproduces the serial build byte for byte.
//!
//! ## Memory budget
//!
//! Each chunk's scratch output covers at most [`BUILD_CHUNK_NODES`] node
//! rows, and the splice step consumes (and frees) chunk buffers one at a
//! time, so transient memory beyond the final table is bounded by the table
//! size itself — the build never holds more than roughly 2× the final
//! footprint, regardless of node count.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Node-count threshold below which builds stay serial: thread spawn and
/// splice overhead outweigh the work for small topologies (the paper's
/// 480-node scenarios never parallelize, keeping their profile unchanged).
pub const PARALLEL_BUILD_THRESHOLD: usize = 8_192;

/// Nodes per work chunk. Small enough to load-balance across workers and
/// bound per-chunk scratch memory, large enough that the claim counter is
/// not contended.
pub const BUILD_CHUNK_NODES: usize = 4_096;

/// The worker count for an `n`-node build: serial below
/// [`PARALLEL_BUILD_THRESHOLD`], otherwise the machine's available
/// parallelism.
pub fn build_workers(n: usize) -> usize {
    if n < PARALLEL_BUILD_THRESHOLD {
        1
    } else {
        std::thread::available_parallelism().map_or(1, |w| w.get())
    }
}

/// Runs `build` over consecutive [`BUILD_CHUNK_NODES`]-sized index chunks of
/// `0..n` on at most `workers` pooled threads, returning the outputs in
/// chunk order regardless of completion order.
///
/// With `workers <= 1` (or a single chunk) the chunks run serially on the
/// caller's thread; the outputs are identical either way because every
/// chunk is independent.
pub fn chunked_build<T, F>(n: usize, workers: usize, build: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(Range<usize>) -> T + Sync,
{
    let chunks: Vec<Range<usize>> = (0..n)
        .step_by(BUILD_CHUNK_NODES)
        .map(|lo| lo..(lo + BUILD_CHUNK_NODES).min(n))
        .collect();
    let workers = workers.min(chunks.len());
    if workers <= 1 {
        return chunks.into_iter().map(build).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<T>> = (0..chunks.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                let Some(range) = chunks.get(k) else { break };
                let filled = slots[k].set(build(range.clone()));
                debug_assert!(filled.is_ok(), "chunk {k} claimed twice");
            });
        }
    });
    slots
        .into_iter()
        // peas-lint: allow(r1-unchecked-panic) -- scope join guarantees every claimed slot was filled; the shared counter claims each exactly once
        .map(|slot| slot.into_inner().expect("worker pool dropped a chunk"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_no_chunks() {
        let out = chunked_build(0, 4, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn chunks_cover_the_range_in_order() {
        let n = BUILD_CHUNK_NODES * 2 + 17;
        for workers in [1, 3] {
            let out = chunked_build(n, workers, |r| r.clone());
            assert_eq!(out.len(), 3);
            assert_eq!(out[0], 0..BUILD_CHUNK_NODES);
            assert_eq!(out[2].end, n);
            let covered: usize = out.iter().map(|r| r.len()).sum();
            assert_eq!(covered, n);
            for w in out.windows(2) {
                assert_eq!(w[0].end, w[1].start, "chunks must be contiguous");
            }
        }
    }

    #[test]
    fn parallel_output_matches_serial() {
        let n = BUILD_CHUNK_NODES * 3 + 5;
        let build = |r: Range<usize>| r.map(|i| i * i).collect::<Vec<usize>>();
        let serial: Vec<usize> = chunked_build(n, 1, build).concat();
        let parallel: Vec<usize> = chunked_build(n, 8, build).concat();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), n);
    }

    #[test]
    fn small_builds_stay_serial() {
        assert_eq!(build_workers(480), 1);
        assert_eq!(build_workers(PARALLEL_BUILD_THRESHOLD - 1), 1);
        assert!(build_workers(PARALLEL_BUILD_THRESHOLD) >= 1);
    }
}
