//! # peas-geom — geometry, deployment, coverage and connectivity
//!
//! The spatial substrate for the PEAS (ICDCS 2003) reproduction:
//!
//! * [`Point`] / [`Field`] — the 2-D sensor field;
//! * [`Deployment`] — uniform (the paper's setting), jittered-grid and
//!   clustered node placement;
//! * [`SpatialGrid`] — bucket grid for O(1) expected-time range queries
//!   ("which nodes are within the probing range `Rp` of this point?");
//! * [`NeighborTables`] — per-range-class CSR adjacency precomputed once
//!   per (static) topology, the broadcast hot path's replacement for
//!   repeated grid queries;
//! * [`CoverageGrid`] — the K-coverage metric of Section 5.2;
//! * [`CoverageCsr`] — precomputed node→cell coverage rows, making
//!   incremental coverage maintenance a pure counter walk;
//! * [`ElevationRaster`] — bilinearly interpolated height-map lattices,
//!   the data substrate for terrain-aware propagation backends;
//! * [`connectivity`] — the working-graph analysis behind Section 3's
//!   `Rt ≥ (1 + √5)·Rp` connectivity condition;
//! * [`UnionFind`] — the disjoint-set forest used by the above;
//! * [`three_d`] — the 3-D variant the paper's footnote 5 claims the
//!   model extends to (points, volumes, K-coverage, connectivity).
//!
//! # Example
//!
//! ```
//! use peas_des::rng::SimRng;
//! use peas_geom::{connectivity, CoverageGrid, Deployment, Field};
//!
//! let field = Field::paper(); // 50 x 50 m
//! let mut rng = SimRng::new(7);
//! let nodes = Deployment::Uniform.generate(field, 160, &mut rng);
//!
//! // How much of the field do all 160 nodes cover with a 10 m sensing range?
//! let coverage = CoverageGrid::new(field, 1.0).k_coverage(&nodes, 10.0, 4);
//! assert!(coverage > 0.95);
//!
//! // And are they mutually reachable at a 10 m radio range?
//! let report = connectivity::analyze(field, &nodes, 10.0);
//! assert!(report.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod coverage;
pub mod deploy;
pub mod field;
pub mod grid;
pub mod neighbors;
pub mod par;
pub mod point;
pub mod raster;
pub mod three_d;
pub mod unionfind;

pub use connectivity::{ConnectivityReport, CONNECTIVITY_FACTOR};
pub use coverage::{CoverageCsr, CoverageGrid};
pub use deploy::Deployment;
pub use field::Field;
pub use grid::SpatialGrid;
pub use neighbors::NeighborTables;
pub use point::Point;
pub use raster::ElevationRaster;
pub use unionfind::UnionFind;
