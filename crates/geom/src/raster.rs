//! Height-map rasters for terrain-aware propagation.
//!
//! An [`ElevationRaster`] is a row-major lattice of elevation samples
//! (meters above a common datum) spaced `cell_size` meters apart, covering
//! the rectangle `[0, (cols-1)·cell] × [0, (rows-1)·cell]`. Continuous
//! elevations between lattice points come from bilinear interpolation;
//! queries outside the covered rectangle clamp to the nearest edge, so the
//! surface is total over the whole plane.
//!
//! The raster is pure data: it carries no randomness and no I/O, so every
//! elevation query is a deterministic function of the sample grid — the
//! property the propagation layer's build-time loss terms rely on.
//! [`ElevationRaster::generate`] produces synthetic rolling terrain from a
//! seeded [`SimRng`] stream for scenarios that want hills without shipping
//! an inline height map.

use peas_des::rng::SimRng;

use crate::point::Point;

/// A rectangular height map: `rows × cols` elevation samples on a square
/// lattice with `cell_size` meter spacing, bilinearly interpolated.
#[derive(Clone, Debug, PartialEq)]
pub struct ElevationRaster {
    cols: usize,
    rows: usize,
    cell_size: f64,
    /// Row-major samples: `data[r * cols + c]` is the elevation at
    /// `(c · cell_size, r · cell_size)`.
    data: Vec<f64>,
}

impl ElevationRaster {
    /// Builds a raster from row-major samples.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: fewer than
    /// 2×2 samples, a non-positive or non-finite `cell_size`, a data
    /// length that does not equal `cols × rows`, or a non-finite sample.
    pub fn new(
        cols: usize,
        rows: usize,
        cell_size: f64,
        data: Vec<f64>,
    ) -> Result<ElevationRaster, String> {
        if cols < 2 || rows < 2 {
            return Err(format!(
                "raster needs at least 2x2 samples, got {cols}x{rows}"
            ));
        }
        if !(cell_size.is_finite() && cell_size > 0.0) {
            return Err(format!("cell_size must be positive, got {cell_size}"));
        }
        let want = cols
            .checked_mul(rows)
            .ok_or_else(|| format!("raster dimensions {cols}x{rows} overflow"))?;
        if data.len() != want {
            return Err(format!(
                "raster has {} samples but {cols} cols x {rows} rows = {want}",
                data.len()
            ));
        }
        if let Some(i) = data.iter().position(|h| !h.is_finite()) {
            return Err(format!("raster sample {i} is not finite"));
        }
        Ok(ElevationRaster {
            cols,
            rows,
            cell_size,
            data,
        })
    }

    /// Deterministic synthetic terrain: `hills` Gaussian mounds with
    /// seeded centers, widths and heights (heights up to `amplitude`
    /// meters), summed over the lattice. Same inputs, same raster —
    /// the generator consumes one decoupled [`SimRng`] stream and
    /// nothing else.
    ///
    /// # Panics
    ///
    /// Panics if the resulting raster would be invalid (dimensions below
    /// 2×2, non-positive `cell_size`, or a non-finite `amplitude`).
    pub fn generate(
        cols: usize,
        rows: usize,
        cell_size: f64,
        seed: u64,
        amplitude: f64,
        hills: usize,
    ) -> ElevationRaster {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "amplitude must be finite and non-negative, got {amplitude}"
        );
        let mut rng = SimRng::stream(seed, 0x7E44_A1B5);
        let width = (cols.saturating_sub(1)) as f64 * cell_size;
        let height = (rows.saturating_sub(1)) as f64 * cell_size;
        let min_side = width.min(height);
        let mounds: Vec<(f64, f64, f64, f64)> = (0..hills)
            .map(|_| {
                let cx = rng.range_f64(0.0, width.max(f64::MIN_POSITIVE));
                let cy = rng.range_f64(0.0, height.max(f64::MIN_POSITIVE));
                // Widths between 10% and 35% of the shorter side keep the
                // mounds resolvable at any lattice density.
                let sigma = rng.range_f64(0.10, 0.35) * min_side.max(cell_size);
                let peak = rng.range_f64(0.2, 1.0) * amplitude;
                (cx, cy, sigma, peak)
            })
            .collect();
        let mut data = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let x = c as f64 * cell_size;
                let y = r as f64 * cell_size;
                let h: f64 = mounds
                    .iter()
                    .map(|&(cx, cy, sigma, peak)| {
                        let d2 = (x - cx).powi(2) + (y - cy).powi(2);
                        peak * (-d2 / (2.0 * sigma * sigma)).exp()
                    })
                    .sum();
                data.push(h);
            }
        }
        // peas-lint: allow(r1-unchecked-panic) -- the asserts above make the constructor infallible here
        ElevationRaster::new(cols, rows, cell_size, data).expect("generated raster is valid")
    }

    /// Sample columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sample rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Lattice spacing, meters.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Width of the covered rectangle, meters: `(cols - 1) · cell_size`.
    pub fn width(&self) -> f64 {
        (self.cols - 1) as f64 * self.cell_size
    }

    /// Height of the covered rectangle, meters: `(rows - 1) · cell_size`.
    pub fn height(&self) -> f64 {
        (self.rows - 1) as f64 * self.cell_size
    }

    /// Bytes of sample payload (the scale bench's memory budget unit).
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Bilinearly interpolated elevation at `p`. Coordinates outside the
    /// covered rectangle clamp to the nearest edge, so the surface is
    /// defined everywhere.
    pub fn elevation_at(&self, p: Point) -> f64 {
        let x = (p.x / self.cell_size).clamp(0.0, (self.cols - 1) as f64);
        let y = (p.y / self.cell_size).clamp(0.0, (self.rows - 1) as f64);
        let c0 = (x as usize).min(self.cols - 2);
        let r0 = (y as usize).min(self.rows - 2);
        let fx = x - c0 as f64;
        let fy = y - r0 as f64;
        let h00 = self.data[r0 * self.cols + c0];
        let h10 = self.data[r0 * self.cols + c0 + 1];
        let h01 = self.data[(r0 + 1) * self.cols + c0];
        let h11 = self.data[(r0 + 1) * self.cols + c0 + 1];
        let top = h00 + (h10 - h00) * fx;
        let bottom = h01 + (h11 - h01) * fx;
        top + (bottom - top) * fy
    }

    /// Smallest and largest lattice sample.
    pub fn min_max(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &h in &self.data {
            lo = lo.min(h);
            hi = hi.max(h);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> ElevationRaster {
        // Elevation = x over a 3x2 lattice with 10 m cells.
        ElevationRaster::new(3, 2, 10.0, vec![0.0, 10.0, 20.0, 0.0, 10.0, 20.0]).expect("valid")
    }

    #[test]
    fn constructor_rejects_malformed_rasters() {
        let err = ElevationRaster::new(1, 2, 1.0, vec![0.0, 0.0]).unwrap_err();
        assert!(err.contains("at least 2x2"), "{err}");
        let err = ElevationRaster::new(2, 2, 0.0, vec![0.0; 4]).unwrap_err();
        assert!(err.contains("cell_size must be positive"), "{err}");
        let err = ElevationRaster::new(2, 2, -3.0, vec![0.0; 4]).unwrap_err();
        assert!(err.contains("cell_size must be positive"), "{err}");
        let err = ElevationRaster::new(3, 2, 1.0, vec![0.0; 5]).unwrap_err();
        assert!(err.contains("5 samples but 3 cols x 2 rows = 6"), "{err}");
        let err = ElevationRaster::new(2, 2, 1.0, vec![0.0, 1.0, f64::NAN, 3.0]).unwrap_err();
        assert!(err.contains("sample 2 is not finite"), "{err}");
    }

    #[test]
    fn lattice_points_are_exact_and_interior_is_bilinear() {
        let r = ramp();
        assert_eq!(r.elevation_at(Point::new(0.0, 0.0)), 0.0);
        assert_eq!(r.elevation_at(Point::new(10.0, 0.0)), 10.0);
        assert_eq!(r.elevation_at(Point::new(20.0, 10.0)), 20.0);
        // Linear ramp: interpolation reproduces x exactly.
        assert!((r.elevation_at(Point::new(7.5, 3.0)) - 7.5).abs() < 1e-12);
        assert!((r.elevation_at(Point::new(13.0, 9.0)) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn queries_outside_the_rectangle_clamp_to_the_edge() {
        let r = ramp();
        assert_eq!(r.elevation_at(Point::new(-5.0, 5.0)), 0.0);
        assert_eq!(r.elevation_at(Point::new(100.0, 5.0)), 20.0);
        assert_eq!(r.elevation_at(Point::new(7.5, -4.0)), 7.5);
        assert_eq!(r.elevation_at(Point::new(7.5, 40.0)), 7.5);
    }

    #[test]
    fn extent_and_memory_accounting() {
        let r = ramp();
        assert_eq!(r.width(), 20.0);
        assert_eq!(r.height(), 10.0);
        assert_eq!(r.cols(), 3);
        assert_eq!(r.rows(), 2);
        assert_eq!(r.cell_size(), 10.0);
        assert_eq!(r.memory_bytes(), 6 * 8);
        assert_eq!(r.min_max(), (0.0, 20.0));
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let a = ElevationRaster::generate(11, 11, 5.0, 42, 8.0, 6);
        let b = ElevationRaster::generate(11, 11, 5.0, 42, 8.0, 6);
        assert_eq!(a, b);
        let c = ElevationRaster::generate(11, 11, 5.0, 43, 8.0, 6);
        assert_ne!(a, c, "different seeds must give different terrain");
        let (lo, hi) = a.min_max();
        assert!(lo >= 0.0);
        // Mounds can stack, but 6 mounds of <= 8 m stay under 6 * 8.
        assert!(hi <= 48.0);
        assert!(hi > 0.0, "generated terrain is completely flat");
    }

    #[test]
    fn flat_generation_with_zero_amplitude() {
        let r = ElevationRaster::generate(4, 4, 2.0, 7, 0.0, 5);
        assert_eq!(r.min_max(), (0.0, 0.0));
    }
}
