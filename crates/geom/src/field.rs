//! The rectangular deployment field.

use crate::point::Point;

/// An axis-aligned rectangular field `[0, width] × [0, height]`, in meters.
///
/// The paper's evaluation uses a 50 × 50 m field (Section 5.2);
/// [`Field::paper`] constructs exactly that.
///
/// # Examples
///
/// ```
/// use peas_geom::{Field, Point};
///
/// let field = Field::paper();
/// assert_eq!(field.area(), 2500.0);
/// assert!(field.contains(Point::new(25.0, 25.0)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Field {
    width: f64,
    height: f64,
}

impl Field {
    /// Creates a `width × height` meter field.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive and finite.
    pub fn new(width: f64, height: f64) -> Field {
        assert!(
            width.is_finite() && height.is_finite() && width > 0.0 && height > 0.0,
            "field dimensions must be positive and finite, got {width} x {height}"
        );
        Field { width, height }
    }

    /// The 50 × 50 m field of the paper's evaluation (Section 5.2).
    pub fn paper() -> Field {
        Field::new(50.0, 50.0)
    }

    /// Width in meters.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Area in square meters.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Whether `p` lies within the field (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Clamps `p` to the field.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// The four corners, counter-clockwise from the origin.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(0.0, 0.0),
            Point::new(self.width, 0.0),
            Point::new(self.width, self.height),
            Point::new(0.0, self.height),
        ]
    }

    /// The center point.
    pub fn center(&self) -> Point {
        Point::new(self.width / 2.0, self.height / 2.0)
    }

    /// The field diagonal length — the longest possible node separation.
    pub fn diagonal(&self) -> f64 {
        (self.width * self.width + self.height * self.height).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_field_matches_section_5_2() {
        let f = Field::paper();
        assert_eq!(f.width(), 50.0);
        assert_eq!(f.height(), 50.0);
        assert_eq!(f.area(), 2500.0);
    }

    #[test]
    fn contains_is_boundary_inclusive() {
        let f = Field::new(10.0, 20.0);
        assert!(f.contains(Point::new(0.0, 0.0)));
        assert!(f.contains(Point::new(10.0, 20.0)));
        assert!(!f.contains(Point::new(10.001, 5.0)));
        assert!(!f.contains(Point::new(-0.001, 5.0)));
    }

    #[test]
    fn clamp_projects_into_field() {
        let f = Field::new(10.0, 10.0);
        assert_eq!(f.clamp(Point::new(-5.0, 15.0)), Point::new(0.0, 10.0));
        assert_eq!(f.clamp(Point::new(3.0, 4.0)), Point::new(3.0, 4.0));
    }

    #[test]
    fn corners_and_center() {
        let f = Field::new(4.0, 2.0);
        assert_eq!(f.corners()[2], Point::new(4.0, 2.0));
        assert_eq!(f.center(), Point::new(2.0, 1.0));
    }

    #[test]
    fn diagonal_length() {
        let f = Field::new(30.0, 40.0);
        assert!((f.diagonal() - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_width_rejected() {
        let _ = Field::new(0.0, 10.0);
    }
}
