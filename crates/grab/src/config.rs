//! GRAB configuration.

use peas_des::time::SimDuration;

/// Tunables of the GRAB-style forwarding substrate.
///
/// [`GrabConfig::paper`] matches the Section 5.2 workload: one report every
/// 10 s from a corner source to a corner sink, relayed by whatever nodes
/// PEAS currently keeps working.
#[derive(Clone, Debug, PartialEq)]
pub struct GrabConfig {
    /// Period between sink cost-field refresh floods (new ADV epochs). The
    /// field must be rebuilt as working nodes die and are replaced.
    pub adv_period: SimDuration,
    /// Period between data reports at the source (10 s in Section 5.2).
    pub report_period: SimDuration,
    /// Maximum random delay before rebroadcasting an ADV (desynchronizes
    /// the flood to reduce collisions).
    pub adv_delay_max: SimDuration,
    /// Maximum random delay before forwarding a report.
    pub forward_delay_max: SimDuration,
    /// Credit width α: a report from a source at cost `C` may consume up to
    /// `ceil((1+α)·C)` hops in total, widening the forwarding mesh for
    /// robustness (the GRAB credit idea). α = 1 keeps delivery above the
    /// paper's 90% threshold under collision losses.
    pub credit_alpha: f64,
    /// Transmission range for ADV and report frames (the full radio range;
    /// 10 m in Section 5.1).
    pub data_range: f64,
    /// ADV frame size in bytes.
    pub adv_bytes: usize,
    /// Report frame size in bytes.
    pub report_bytes: usize,
}

impl GrabConfig {
    /// The Section 5.2 workload parameters.
    pub fn paper() -> GrabConfig {
        GrabConfig {
            adv_period: SimDuration::from_secs(100),
            report_period: SimDuration::from_secs(10),
            adv_delay_max: SimDuration::from_millis(300),
            forward_delay_max: SimDuration::from_millis(700),
            credit_alpha: 1.0,
            data_range: 10.0,
            adv_bytes: 25,
            report_bytes: 50,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.adv_period.is_zero() {
            return Err("adv_period must be positive");
        }
        if self.report_period.is_zero() {
            return Err("report_period must be positive");
        }
        if !(self.credit_alpha.is_finite() && self.credit_alpha >= 0.0) {
            return Err("credit_alpha must be non-negative");
        }
        if !(self.data_range.is_finite() && self.data_range > 0.0) {
            return Err("data_range must be positive");
        }
        if self.adv_bytes == 0 || self.report_bytes == 0 {
            return Err("frame sizes must be positive");
        }
        Ok(())
    }

    /// Total hop budget for a report generated at cost `source_cost`.
    pub fn hop_budget(&self, source_cost: u32) -> u32 {
        // peas-lint: allow(r3-unchecked-cast) -- float-to-int `as` saturates rather than wraps; a clamped budget is the intent
        ((1.0 + self.credit_alpha) * source_cost as f64).ceil() as u32
    }
}

impl Default for GrabConfig {
    fn default() -> Self {
        GrabConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = GrabConfig::paper();
        assert_eq!(c.report_period, SimDuration::from_secs(10));
        assert_eq!(c.data_range, 10.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn hop_budget_widens_with_alpha() {
        let mut c = GrabConfig::paper();
        c.credit_alpha = 0.5;
        assert_eq!(c.hop_budget(10), 15);
        c.credit_alpha = 0.0;
        assert_eq!(c.hop_budget(10), 10);
        assert_eq!(c.hop_budget(7), 7);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = GrabConfig::paper();
        c.credit_alpha = -1.0;
        assert!(c.validate().is_err());
        let mut c = GrabConfig::paper();
        c.report_period = SimDuration::ZERO;
        assert!(c.validate().is_err());
        let mut c = GrabConfig::paper();
        c.data_range = 0.0;
        assert!(c.validate().is_err());
    }
}
