//! GRAB messages: cost-field advertisements and data reports.

use peas_radio::NodeId;

/// A GRAB frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrabMessage {
    /// Cost-field advertisement flooded from the sink. `cost` is the hop
    /// count of the *sender*; receivers adopt `cost + 1`.
    Adv {
        /// Flood generation; higher epochs supersede lower ones.
        epoch: u32,
        /// Sender's hop distance from the sink (0 at the sink itself).
        cost: u32,
    },
    /// A data report descending the cost field toward the sink.
    Report(Report),
}

/// A data report in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// The originating source node.
    pub source: NodeId,
    /// Sequence number at the source (unique per source).
    pub seq: u64,
    /// The cost of the node that transmitted this copy; receivers forward
    /// only if their own cost is strictly smaller (gradient descent).
    pub sender_cost: u32,
    /// Transmissions consumed so far (the source's own broadcast counts as
    /// the first).
    pub hops: u32,
    /// Total hop budget `ceil((1+α)·C_source)`; copies that cannot reach
    /// the sink within the remaining budget are dropped.
    pub budget: u32,
}

impl Report {
    /// Whether a relay at `cost` may forward this copy: strictly descending
    /// cost and enough budget to still reach the sink. A relay at cost `c`
    /// needs exactly `c` more transmissions (its own plus `c − 1`
    /// downstream), so the condition is `hops + c ≤ budget` — inclusive,
    /// or a zero-margin (α = 0) budget could never deliver.
    pub fn forwardable_at(&self, cost: u32) -> bool {
        cost < self.sender_cost && self.hops + cost <= self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(sender_cost: u32, hops: u32, budget: u32) -> Report {
        Report {
            source: NodeId(1),
            seq: 7,
            sender_cost,
            hops,
            budget,
        }
    }

    #[test]
    fn forwarding_requires_descending_cost() {
        let r = report(5, 1, 100);
        assert!(r.forwardable_at(4));
        assert!(!r.forwardable_at(5));
        assert!(!r.forwardable_at(6));
    }

    #[test]
    fn forwarding_requires_budget() {
        // hops=4 consumed, relay at cost 6 needs 6 more: total 10 > budget 9.
        let r = report(7, 4, 9);
        assert!(!r.forwardable_at(6));
        // A relay at cost 5 needs 5 more: total 9 = 9: exactly affordable.
        assert!(r.forwardable_at(5));
        // A relay at cost 4: total 8 < 9: ok.
        assert!(r.forwardable_at(4));
    }

    #[test]
    fn cost_zero_sink_neighbors_forwardable() {
        let r = report(1, 3, 5);
        assert!(r.forwardable_at(0));
    }
}
