//! # peas-grab — GRAB-style gradient mesh forwarding
//!
//! The data-delivery substrate for the PEAS (ICDCS 2003) reproduction. The
//! paper delivers source reports to the sink with GRAB (GRAdient Broadcast,
//! reference \[11\] of the paper); this crate implements its published core
//! idea as a compact, simulator-driven protocol:
//!
//! 1. the sink periodically floods a cost-field **ADV** (hop-count field,
//!    refreshed with increasing epochs as the working set churns);
//! 2. each working node remembers its cost — its hop distance to the sink —
//!    and rebroadcasts improving ADVs ([`GrabRelay`]);
//! 3. the source stamps every report with its own cost and a hop *budget*
//!    `ceil((1+α)·cost)`; relays forward a report only when their cost is
//!    strictly smaller than the sender's and the remaining budget can still
//!    reach the sink — a credit-widened forwarding mesh that survives
//!    individual relay failures ([`Report::forwardable_at`]).
//!
//! What matters for the paper's Figures 10 and 13 is preserved exactly:
//! reports get through iff PEAS maintains a connected, sufficiently
//! redundant working set between the corners.
//!
//! ## Example
//!
//! ```
//! use peas_des::rng::SimRng;
//! use peas_grab::{GrabConfig, GrabMessage, GrabRelay, GrabSink, GrabSource};
//! use peas_radio::NodeId;
//!
//! let config = GrabConfig::paper();
//! let mut sink = GrabSink::new();
//! let mut relay = GrabRelay::new(config.clone());
//! let mut source = GrabSource::new(NodeId(42), config);
//! let mut rng = SimRng::new(1);
//!
//! // Sink floods; the relay (1 hop out) adopts cost 1; the source hears
//! // the relay's rebroadcast and adopts cost 2.
//! let GrabMessage::Adv { epoch, cost } = sink.next_adv() else { unreachable!() };
//! let out = relay.on_adv(epoch, cost, &mut rng).unwrap();
//! let GrabMessage::Adv { epoch, cost } = out.msg else { unreachable!() };
//! source.on_adv(epoch, cost);
//!
//! // A report descends source -> relay -> sink.
//! let report = source.generate().unwrap();
//! let fwd = relay.on_report(report, &mut rng).unwrap();
//! let GrabMessage::Report(copy) = fwd.msg else { unreachable!() };
//! assert!(sink.on_report(copy));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod endpoints;
pub mod msg;
pub mod relay;

pub use config::GrabConfig;
pub use endpoints::{GrabSink, GrabSource};
pub use msg::{GrabMessage, Report};
pub use relay::{CostState, GrabRelay, Outgoing};
