//! The GRAB relay: cost-field maintenance and mesh forwarding.
//!
//! Every *working* PEAS node runs one relay. Sleeping nodes hear nothing;
//! when a node is turned off its relay state is reset — it re-learns its
//! cost from the next ADV epoch after it starts working again.

use peas_des::rng::SimRng;
use peas_des::time::SimDuration;
use peas_des::DetSet;

use crate::config::GrabConfig;
use crate::msg::{GrabMessage, Report};

/// A frame the relay wants transmitted after a small random delay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Outgoing {
    /// The frame to broadcast.
    pub msg: GrabMessage,
    /// Desynchronization delay before transmitting.
    pub delay: SimDuration,
}

/// Cost-field state shared by relays and sources.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostState {
    state: Option<(u32, u32)>, // (epoch, cost)
}

impl CostState {
    /// No cost known yet.
    pub fn new() -> CostState {
        CostState::default()
    }

    /// Current cost if one is known for the latest epoch seen.
    pub fn cost(&self) -> Option<u32> {
        self.state.map(|(_, c)| c)
    }

    /// The epoch the current cost belongs to.
    pub fn epoch(&self) -> Option<u32> {
        self.state.map(|(e, _)| e)
    }

    /// Observes an ADV from a neighbor at `cost` in `epoch`. Returns the
    /// node's new cost if it improved (meaning the ADV should be
    /// rebroadcast), `None` if the ADV brought nothing new.
    pub fn observe_adv(&mut self, epoch: u32, neighbor_cost: u32) -> Option<u32> {
        let my_cost = neighbor_cost.saturating_add(1);
        match self.state {
            Some((e, _)) if e > epoch => None,                  // stale epoch
            Some((e, c)) if e == epoch && c <= my_cost => None, // no improvement
            _ => {
                self.state = Some((epoch, my_cost));
                Some(my_cost)
            }
        }
    }

    /// Forgets everything (node went to sleep / died).
    pub fn reset(&mut self) {
        self.state = None;
    }
}

/// One working node's GRAB forwarding state.
///
/// # Examples
///
/// ```
/// use peas_des::rng::SimRng;
/// use peas_grab::{GrabConfig, GrabMessage, GrabRelay};
///
/// let mut relay = GrabRelay::new(GrabConfig::paper());
/// let mut rng = SimRng::new(1);
/// // An ADV from a sink-adjacent node (cost 1): we adopt cost 2 and
/// // rebroadcast.
/// let out = relay.on_adv(5, 1, &mut rng).expect("improved cost");
/// assert_eq!(out.msg, GrabMessage::Adv { epoch: 5, cost: 2 });
/// assert_eq!(relay.cost(), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct GrabRelay {
    config: GrabConfig,
    cost: CostState,
    seen_reports: DetSet<(u32, u64)>,
    forwarded: u64,
    dropped_budget: u64,
    dropped_gradient: u64,
    duplicates: u64,
}

impl GrabRelay {
    /// Creates a relay with no cost knowledge.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(config: GrabConfig) -> GrabRelay {
        if let Err(e) = config.validate() {
            panic!("invalid GRAB configuration: {e}");
        }
        GrabRelay {
            config,
            cost: CostState::new(),
            seen_reports: DetSet::new(),
            forwarded: 0,
            dropped_budget: 0,
            dropped_gradient: 0,
            duplicates: 0,
        }
    }

    /// Handles a received ADV; returns the rebroadcast if the cost improved.
    pub fn on_adv(&mut self, epoch: u32, neighbor_cost: u32, rng: &mut SimRng) -> Option<Outgoing> {
        self.cost
            .observe_adv(epoch, neighbor_cost)
            .map(|my_cost| Outgoing {
                msg: GrabMessage::Adv {
                    epoch,
                    cost: my_cost,
                },
                delay: rng.range_duration(SimDuration::ZERO, self.config.adv_delay_max),
            })
    }

    /// Handles a received report copy; returns the forwarded copy when the
    /// gradient and credit rules allow it and this report was not relayed
    /// before.
    pub fn on_report(&mut self, report: Report, rng: &mut SimRng) -> Option<Outgoing> {
        let key = (report.source.0, report.seq);
        if self.seen_reports.contains(&key) {
            self.duplicates += 1;
            return None;
        }
        let Some(my_cost) = self.cost.cost() else {
            return None; // no gradient yet; cannot route
        };
        if my_cost >= report.sender_cost {
            self.dropped_gradient += 1;
            return None;
        }
        if !report.forwardable_at(my_cost) {
            self.dropped_budget += 1;
            return None;
        }
        self.seen_reports.insert(key);
        self.forwarded += 1;
        Some(Outgoing {
            msg: GrabMessage::Report(Report {
                sender_cost: my_cost,
                hops: report.hops + 1,
                ..report
            }),
            delay: rng.range_duration(SimDuration::ZERO, self.config.forward_delay_max),
        })
    }

    /// The node's current hop distance to the sink, if known.
    pub fn cost(&self) -> Option<u32> {
        self.cost.cost()
    }

    /// Clears all state (call when the node stops working).
    pub fn reset(&mut self) {
        self.cost.reset();
        self.seen_reports.clear();
    }

    /// Reports forwarded by this relay.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Copies dropped because the budget was exhausted.
    pub fn dropped_budget(&self) -> u64 {
        self.dropped_budget
    }

    /// Copies dropped because the sender was closer to the sink already.
    pub fn dropped_gradient(&self) -> u64 {
        self.dropped_gradient
    }

    /// Duplicate copies suppressed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peas_radio::NodeId;

    fn relay() -> GrabRelay {
        GrabRelay::new(GrabConfig::paper())
    }

    fn report(seq: u64, sender_cost: u32, hops: u32, budget: u32) -> Report {
        Report {
            source: NodeId(9),
            seq,
            sender_cost,
            hops,
            budget,
        }
    }

    #[test]
    fn cost_state_adopts_and_improves() {
        let mut cs = CostState::new();
        assert_eq!(cs.cost(), None);
        assert_eq!(cs.observe_adv(1, 4), Some(5));
        // Worse or equal path in same epoch: ignored.
        assert_eq!(cs.observe_adv(1, 4), None);
        assert_eq!(cs.observe_adv(1, 7), None);
        // Better path: improved.
        assert_eq!(cs.observe_adv(1, 2), Some(3));
        assert_eq!(cs.cost(), Some(3));
    }

    #[test]
    fn cost_state_new_epoch_supersedes() {
        let mut cs = CostState::new();
        cs.observe_adv(1, 2);
        // New epoch with a worse cost still replaces the old field.
        assert_eq!(cs.observe_adv(2, 9), Some(10));
        assert_eq!(cs.epoch(), Some(2));
        // Stale epoch ignored entirely.
        assert_eq!(cs.observe_adv(1, 0), None);
        assert_eq!(cs.cost(), Some(10));
    }

    #[test]
    fn relay_rebroadcasts_improving_advs_only() {
        let mut r = relay();
        let mut rng = SimRng::new(1);
        assert!(r.on_adv(1, 0, &mut rng).is_some());
        assert!(r.on_adv(1, 0, &mut rng).is_none(), "same ADV suppressed");
        assert!(r.on_adv(1, 5, &mut rng).is_none(), "worse ADV suppressed");
        assert_eq!(r.cost(), Some(1));
    }

    #[test]
    fn relay_forwards_descending_reports_once() {
        let mut r = relay();
        let mut rng = SimRng::new(2);
        r.on_adv(1, 2, &mut rng); // cost = 3
        let out = r.on_report(report(1, 5, 1, 100), &mut rng).unwrap();
        match out.msg {
            GrabMessage::Report(fwd) => {
                assert_eq!(fwd.sender_cost, 3);
                assert_eq!(fwd.hops, 2);
                assert_eq!(fwd.seq, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Duplicate copy (e.g. from another neighbor) suppressed.
        assert!(r.on_report(report(1, 7, 2, 100), &mut rng).is_none());
        assert_eq!(r.duplicates(), 1);
        assert_eq!(r.forwarded(), 1);
    }

    #[test]
    fn relay_drops_uphill_reports() {
        let mut r = relay();
        let mut rng = SimRng::new(3);
        r.on_adv(1, 4, &mut rng); // cost = 5
        assert!(r.on_report(report(1, 5, 1, 100), &mut rng).is_none());
        assert!(r.on_report(report(2, 3, 1, 100), &mut rng).is_none());
        assert_eq!(r.dropped_gradient(), 2);
    }

    #[test]
    fn relay_respects_budget() {
        let mut r = relay();
        let mut rng = SimRng::new(4);
        r.on_adv(1, 4, &mut rng); // cost = 5
                                  // budget 7, hops 3 consumed, 5 more needed -> 8 > 7: drop.
        assert!(r.on_report(report(1, 6, 3, 7), &mut rng).is_none());
        assert_eq!(r.dropped_budget(), 1);
        // budget 8 affords it exactly: forward.
        assert!(r.on_report(report(2, 6, 3, 8), &mut rng).is_some());
    }

    #[test]
    fn relay_without_cost_cannot_route() {
        let mut r = relay();
        let mut rng = SimRng::new(5);
        assert!(r.on_report(report(1, 5, 1, 100), &mut rng).is_none());
    }

    #[test]
    fn reset_clears_cost_and_dedup() {
        let mut r = relay();
        let mut rng = SimRng::new(6);
        r.on_adv(3, 1, &mut rng);
        r.on_report(report(1, 5, 1, 100), &mut rng);
        r.reset();
        assert_eq!(r.cost(), None);
        // After reset and a fresh ADV the same seq forwards again (the node
        // "rebooted" its working session).
        r.on_adv(4, 1, &mut rng);
        assert!(r.on_report(report(1, 5, 1, 100), &mut rng).is_some());
    }

    #[test]
    fn delays_are_within_config_bounds() {
        let mut r = relay();
        let mut rng = SimRng::new(7);
        let out = r.on_adv(1, 0, &mut rng).unwrap();
        assert!(out.delay < GrabConfig::paper().adv_delay_max);
        let out = r.on_report(report(1, 9, 1, 100), &mut rng).unwrap();
        assert!(out.delay < GrabConfig::paper().forward_delay_max);
    }
}
