//! The GRAB endpoints: the data sink and the report source.
//!
//! Section 5.2: "A source and a sink are placed in opposite corners of the
//! field. The source generates a data report every 10 seconds and the data
//! report is delivered to the sink using the GRAB forwarding protocol."
//! Both are infrastructure nodes: always awake, not subject to PEAS.

use peas_des::DetSet;

use crate::config::GrabConfig;
use crate::msg::{GrabMessage, Report};
use crate::relay::CostState;
use peas_radio::NodeId;

/// The sink: floods cost-field advertisements and counts delivered reports.
///
/// # Examples
///
/// ```
/// use peas_grab::{GrabMessage, GrabSink};
///
/// let mut sink = GrabSink::new();
/// assert_eq!(sink.next_adv(), GrabMessage::Adv { epoch: 1, cost: 0 });
/// assert_eq!(sink.next_adv(), GrabMessage::Adv { epoch: 2, cost: 0 });
/// ```
#[derive(Clone, Debug, Default)]
pub struct GrabSink {
    epoch: u32,
    delivered: DetSet<(u32, u64)>,
    duplicate_arrivals: u64,
}

impl GrabSink {
    /// A sink that has not flooded yet.
    pub fn new() -> GrabSink {
        GrabSink::default()
    }

    /// Produces the next cost-field flood (a fresh epoch with cost 0).
    pub fn next_adv(&mut self) -> GrabMessage {
        self.epoch += 1;
        GrabMessage::Adv {
            epoch: self.epoch,
            cost: 0,
        }
    }

    /// The current flood epoch (0 before the first flood).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Accepts an arriving report copy. Returns `true` if this sequence
    /// number is newly delivered (first copy to arrive).
    pub fn on_report(&mut self, report: Report) -> bool {
        if self.delivered.insert((report.source.0, report.seq)) {
            true
        } else {
            self.duplicate_arrivals += 1;
            false
        }
    }

    /// Number of distinct reports delivered.
    pub fn delivered_count(&self) -> u64 {
        self.delivered.len() as u64
    }

    /// Whether a particular report arrived.
    pub fn has_received(&self, source: NodeId, seq: u64) -> bool {
        self.delivered.contains(&(source.0, seq))
    }

    /// Redundant copies that arrived after the first.
    pub fn duplicate_arrivals(&self) -> u64 {
        self.duplicate_arrivals
    }
}

/// The source: learns its own cost from ADV floods and mints reports.
#[derive(Clone, Debug)]
pub struct GrabSource {
    id: NodeId,
    config: GrabConfig,
    cost: CostState,
    next_seq: u64,
    generated: u64,
}

impl GrabSource {
    /// A source with identity `id`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(id: NodeId, config: GrabConfig) -> GrabSource {
        if let Err(e) = config.validate() {
            panic!("invalid GRAB configuration: {e}");
        }
        GrabSource {
            id,
            config,
            cost: CostState::new(),
            next_seq: 0,
            generated: 0,
        }
    }

    /// Observes an ADV (the source participates in the flood like a relay
    /// but does not rebroadcast — it only needs its own cost).
    pub fn on_adv(&mut self, epoch: u32, neighbor_cost: u32) {
        let _ = self.cost.observe_adv(epoch, neighbor_cost);
    }

    /// The source's hop distance to the sink, if known.
    pub fn cost(&self) -> Option<u32> {
        self.cost.cost()
    }

    /// Mints the next report, or `None` when no route to the sink is known
    /// yet (counted as generated anyway — the paper's success ratio divides
    /// by all generated reports).
    pub fn generate(&mut self) -> Option<Report> {
        self.generated += 1;
        let cost = self.cost.cost()?;
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(Report {
            source: self.id,
            seq,
            sender_cost: cost,
            hops: 1, // the source's own broadcast is the first transmission
            budget: self.config.hop_budget(cost),
        })
    }

    /// Total reports generated (including unroutable ones).
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The source's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_epochs_increment() {
        let mut sink = GrabSink::new();
        assert_eq!(sink.epoch(), 0);
        assert_eq!(sink.next_adv(), GrabMessage::Adv { epoch: 1, cost: 0 });
        assert_eq!(sink.next_adv(), GrabMessage::Adv { epoch: 2, cost: 0 });
        assert_eq!(sink.epoch(), 2);
    }

    #[test]
    fn sink_counts_unique_deliveries() {
        let mut sink = GrabSink::new();
        let r = Report {
            source: NodeId(3),
            seq: 10,
            sender_cost: 1,
            hops: 4,
            budget: 9,
        };
        assert!(sink.on_report(r));
        assert!(!sink.on_report(r), "duplicate copy");
        assert_eq!(sink.delivered_count(), 1);
        assert_eq!(sink.duplicate_arrivals(), 1);
        assert!(sink.has_received(NodeId(3), 10));
        assert!(!sink.has_received(NodeId(3), 11));
    }

    #[test]
    fn source_needs_a_route() {
        let mut src = GrabSource::new(NodeId(0), GrabConfig::paper());
        assert_eq!(src.generate(), None);
        assert_eq!(src.generated(), 1, "unroutable reports still count");
        src.on_adv(1, 6); // cost = 7
        let r = src.generate().unwrap();
        assert_eq!(r.sender_cost, 7);
        assert_eq!(r.hops, 1);
        assert_eq!(r.budget, GrabConfig::paper().hop_budget(7));
        assert_eq!(src.generated(), 2);
    }

    #[test]
    fn source_sequences_are_unique_and_increasing() {
        let mut src = GrabSource::new(NodeId(0), GrabConfig::paper());
        src.on_adv(1, 4);
        let a = src.generate().unwrap();
        let b = src.generate().unwrap();
        assert_eq!(b.seq, a.seq + 1);
    }

    #[test]
    fn source_cost_improves_with_better_advs() {
        let mut src = GrabSource::new(NodeId(0), GrabConfig::paper());
        src.on_adv(1, 9);
        assert_eq!(src.cost(), Some(10));
        src.on_adv(1, 3);
        assert_eq!(src.cost(), Some(4));
        src.on_adv(2, 8); // new epoch wins
        assert_eq!(src.cost(), Some(9));
    }
}
