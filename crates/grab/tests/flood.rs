//! Static-network integration tests: flooding a cost field over a fixed
//! relay graph must reproduce BFS hop counts, and reports must reach the
//! sink whenever a path exists within budget.

use std::collections::VecDeque;

use peas_des::rng::SimRng;
use peas_grab::{GrabConfig, GrabMessage, GrabRelay, GrabSink, GrabSource, Report};
use peas_radio::NodeId;

/// A static connectivity graph over relays 0..n plus a sink and a source.
struct StaticNet {
    /// adjacency among relays (undirected).
    relay_adj: Vec<Vec<usize>>,
    /// relays adjacent to the sink.
    sink_neighbors: Vec<usize>,
    /// relays adjacent to the source.
    source_neighbors: Vec<usize>,
}

impl StaticNet {
    /// A line: sink — r0 — r1 — … — r(n−1) — source.
    fn line(n: usize) -> StaticNet {
        let relay_adj = (0..n)
            .map(|i| {
                let mut adj = Vec::new();
                if i > 0 {
                    adj.push(i - 1);
                }
                if i + 1 < n {
                    adj.push(i + 1);
                }
                adj
            })
            .collect();
        StaticNet {
            relay_adj,
            sink_neighbors: vec![0],
            source_neighbors: vec![n - 1],
        }
    }

    /// A 2-D grid of `side × side` relays (4-connectivity), sink adjacent
    /// to corner (0,0), source adjacent to the opposite corner.
    fn grid(side: usize) -> StaticNet {
        let idx = |r: usize, c: usize| r * side + c;
        let mut relay_adj = vec![Vec::new(); side * side];
        for r in 0..side {
            for c in 0..side {
                if r + 1 < side {
                    relay_adj[idx(r, c)].push(idx(r + 1, c));
                    relay_adj[idx(r + 1, c)].push(idx(r, c));
                }
                if c + 1 < side {
                    relay_adj[idx(r, c)].push(idx(r, c + 1));
                    relay_adj[idx(r, c + 1)].push(idx(r, c));
                }
            }
        }
        StaticNet {
            relay_adj,
            sink_neighbors: vec![0],
            source_neighbors: vec![side * side - 1],
        }
    }

    /// Floods one ADV epoch from the sink, delivering every broadcast to
    /// all graph neighbors (lossless, synchronous). Returns per-relay
    /// costs and the source's cost.
    fn flood(
        &self,
        relays: &mut [GrabRelay],
        source: &mut GrabSource,
        epoch_msg: GrabMessage,
        rng: &mut SimRng,
    ) -> (Vec<Option<u32>>, Option<u32>) {
        let GrabMessage::Adv { epoch, cost } = epoch_msg else {
            panic!("flood needs an ADV");
        };
        let mut queue: VecDeque<(usize, u32, u32)> = self
            .sink_neighbors
            .iter()
            .map(|&r| (r, epoch, cost))
            .collect();
        while let Some((r, epoch, cost)) = queue.pop_front() {
            if let Some(out) = relays[r].on_adv(epoch, cost, rng) {
                let GrabMessage::Adv {
                    epoch: e,
                    cost: my_cost,
                } = out.msg
                else {
                    panic!("relay rebroadcast a non-ADV");
                };
                for &nb in &self.relay_adj[r] {
                    queue.push_back((nb, e, my_cost));
                }
                if self.source_neighbors.contains(&r) {
                    source.on_adv(e, my_cost);
                }
            }
        }
        (relays.iter().map(|r| r.cost()).collect(), source.cost())
    }

    /// BFS hop distances from the sink (sink itself = 0).
    fn bfs_costs(&self) -> Vec<u32> {
        let n = self.relay_adj.len();
        let mut dist = vec![u32::MAX; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in &self.sink_neighbors {
            dist[r] = 1;
            queue.push_back(r);
        }
        while let Some(v) = queue.pop_front() {
            for &w in &self.relay_adj[v] {
                if dist[w] == u32::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Forwards a report through the mesh (lossless, synchronous) until it
    /// reaches the sink or dies. Returns whether the sink received it.
    fn forward(
        &self,
        relays: &mut [GrabRelay],
        sink: &mut GrabSink,
        report: Report,
        rng: &mut SimRng,
    ) -> bool {
        let mut queue: VecDeque<(usize, Report)> =
            self.source_neighbors.iter().map(|&r| (r, report)).collect();
        let mut delivered = false;
        while let Some((r, rep)) = queue.pop_front() {
            if let Some(out) = relays[r].on_report(rep, rng) {
                let GrabMessage::Report(fwd) = out.msg else {
                    panic!("relay forwarded a non-report");
                };
                for &nb in &self.relay_adj[r] {
                    queue.push_back((nb, fwd));
                }
                if self.sink_neighbors.contains(&r) && sink.on_report(fwd) {
                    delivered = true;
                }
            }
        }
        delivered
    }
}

fn setup(n: usize) -> (Vec<GrabRelay>, GrabSource, GrabSink, SimRng) {
    let config = GrabConfig::paper();
    let relays = (0..n).map(|_| GrabRelay::new(config.clone())).collect();
    let source = GrabSource::new(NodeId(10_000), config);
    (relays, source, GrabSink::new(), SimRng::new(7))
}

#[test]
fn line_cost_field_matches_bfs() {
    let net = StaticNet::line(12);
    let (mut relays, mut source, mut sink, mut rng) = setup(12);
    let adv = sink.next_adv();
    let (costs, source_cost) = net.flood(&mut relays, &mut source, adv, &mut rng);
    let bfs = net.bfs_costs();
    for (i, (&got, &want)) in costs.iter().zip(bfs.iter()).enumerate() {
        assert_eq!(got, Some(want), "relay {i}");
    }
    assert_eq!(source_cost, Some(13)); // 12 relays + the sink hop
}

#[test]
fn grid_cost_field_matches_bfs() {
    let net = StaticNet::grid(7);
    let (mut relays, mut source, mut sink, mut rng) = setup(49);
    let adv = sink.next_adv();
    let (costs, source_cost) = net.flood(&mut relays, &mut source, adv, &mut rng);
    let bfs = net.bfs_costs();
    for (i, (&got, &want)) in costs.iter().zip(bfs.iter()).enumerate() {
        assert_eq!(got, Some(want), "relay {i}");
    }
    // Source sits at the far corner: Manhattan distance 12 relays + 1.
    assert_eq!(source_cost, Some(14));
}

#[test]
fn report_descends_the_line_to_the_sink() {
    let net = StaticNet::line(10);
    let (mut relays, mut source, mut sink, mut rng) = setup(10);
    let adv = sink.next_adv();
    net.flood(&mut relays, &mut source, adv, &mut rng);
    let report = source.generate().expect("route known");
    assert!(net.forward(&mut relays, &mut sink, report, &mut rng));
    assert_eq!(sink.delivered_count(), 1);
}

#[test]
fn report_crosses_the_grid_within_budget() {
    let net = StaticNet::grid(6);
    let (mut relays, mut source, mut sink, mut rng) = setup(36);
    let adv = sink.next_adv();
    net.flood(&mut relays, &mut source, adv, &mut rng);
    let report = source.generate().unwrap();
    assert!(net.forward(&mut relays, &mut sink, report, &mut rng));
    // Multiple descending paths exist; the dedup means every relay
    // forwarded at most once.
    let total_forwards: u64 = relays.iter().map(|r| r.forwarded()).sum();
    assert!(total_forwards <= 36);
}

#[test]
fn zero_budget_margin_still_reaches_on_shortest_path() {
    // alpha = 0: the budget equals the source cost exactly; only the
    // straight-line descent fits.
    let mut config = GrabConfig::paper();
    config.credit_alpha = 0.0;
    let net = StaticNet::line(8);
    let mut relays: Vec<GrabRelay> = (0..8).map(|_| GrabRelay::new(config.clone())).collect();
    let mut source = GrabSource::new(NodeId(10_000), config);
    let mut sink = GrabSink::new();
    let mut rng = SimRng::new(9);
    let adv = sink.next_adv();
    net.flood(&mut relays, &mut source, adv, &mut rng);
    let report = source.generate().unwrap();
    assert!(net.forward(&mut relays, &mut sink, report, &mut rng));
}

#[test]
fn re_flood_after_relay_resets_heals_the_field() {
    let net = StaticNet::line(6);
    let (mut relays, mut source, mut sink, mut rng) = setup(6);
    let adv = sink.next_adv();
    net.flood(&mut relays, &mut source, adv, &mut rng);
    // Relay 3 "stops working": it forgets everything.
    relays[3].reset();
    assert_eq!(relays[3].cost(), None);
    // The next epoch restores it.
    let adv = sink.next_adv();
    net.flood(&mut relays, &mut source, adv, &mut rng);
    assert_eq!(relays[3].cost(), Some(4));
    let report = source.generate().unwrap();
    assert!(net.forward(&mut relays, &mut sink, report, &mut rng));
}
