//! Property-based tests for the GRAB forwarding substrate.

use proptest::prelude::*;

use peas_des::rng::SimRng;
use peas_grab::{CostState, GrabConfig, GrabMessage, GrabRelay, GrabSink, GrabSource, Report};
use peas_radio::NodeId;

proptest! {
    /// Cost state only improves within an epoch and epochs are monotone.
    #[test]
    fn cost_state_monotone(advs in prop::collection::vec((0u32..5, 0u32..20), 1..60)) {
        let mut cs = CostState::new();
        let mut best_per_epoch: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::new();
        let mut max_epoch = 0u32;
        for (epoch, cost) in advs {
            let before = cs.cost();
            let improved = cs.observe_adv(epoch, cost);
            // Never regress to an older epoch.
            if let Some(e) = cs.epoch() {
                prop_assert!(e >= max_epoch.min(e));
                max_epoch = max_epoch.max(e);
            }
            if let Some(new_cost) = improved {
                prop_assert_eq!(new_cost, cost + 1);
                prop_assert_eq!(cs.cost(), Some(new_cost));
                let entry = best_per_epoch.entry(epoch).or_insert(u32::MAX);
                prop_assert!(new_cost < *entry || cs.epoch() == Some(epoch));
                *entry = (*entry).min(new_cost);
            } else if cs.epoch() == Some(epoch) {
                // Same epoch, no improvement: cost unchanged.
                prop_assert_eq!(cs.cost(), before);
            }
        }
    }

    /// A relay forwards a given (source, seq) at most once, ever.
    #[test]
    fn relay_forwards_each_report_once(
        seqs in prop::collection::vec(0u64..10, 1..80),
        my_cost_adv in 0u32..10,
    ) {
        let mut rng = SimRng::new(1);
        let mut relay = GrabRelay::new(GrabConfig::paper());
        relay.on_adv(1, my_cost_adv, &mut rng);
        let my_cost = relay.cost().unwrap();
        let mut forwarded: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for seq in seqs {
            let report = Report {
                source: NodeId(3),
                seq,
                sender_cost: my_cost + 1,
                hops: 1,
                budget: 1_000,
            };
            if let Some(out) = relay.on_report(report, &mut rng) {
                prop_assert!(forwarded.insert(seq), "seq {seq} forwarded twice");
                let GrabMessage::Report(fwd) = out.msg else {
                    return Err(TestCaseError::fail("non-report forwarded"));
                };
                prop_assert_eq!(fwd.sender_cost, my_cost);
                prop_assert_eq!(fwd.hops, 2);
            }
        }
    }

    /// Forwarded copies always descend the cost field and never exceed the
    /// budget.
    #[test]
    fn forwarding_descends_and_respects_budget(
        sender_cost in 1u32..20,
        my_adv in 0u32..20,
        hops in 0u32..20,
        budget in 1u32..40,
    ) {
        let mut rng = SimRng::new(2);
        let mut relay = GrabRelay::new(GrabConfig::paper());
        relay.on_adv(1, my_adv, &mut rng);
        let my_cost = relay.cost().unwrap();
        let report = Report {
            source: NodeId(5),
            seq: 1,
            sender_cost,
            hops,
            budget,
        };
        match relay.on_report(report, &mut rng) {
            Some(out) => {
                let GrabMessage::Report(fwd) = out.msg else {
                    return Err(TestCaseError::fail("non-report forwarded"));
                };
                prop_assert!(my_cost < sender_cost, "uphill forward");
                prop_assert!(hops + my_cost <= budget, "budget violated");
                prop_assert_eq!(fwd.hops, hops + 1);
            }
            None => {
                // Must have been blocked by gradient, budget, or dedup.
                let blocked = my_cost >= sender_cost || hops + my_cost > budget;
                prop_assert!(blocked, "forwardable report dropped");
            }
        }
    }

    /// The sink counts each sequence exactly once no matter how many
    /// copies arrive.
    #[test]
    fn sink_deduplicates(copies in prop::collection::vec(0u64..15, 1..100)) {
        let mut sink = GrabSink::new();
        let distinct: std::collections::HashSet<u64> = copies.iter().copied().collect();
        for seq in &copies {
            sink.on_report(Report {
                source: NodeId(1),
                seq: *seq,
                sender_cost: 1,
                hops: 3,
                budget: 10,
            });
        }
        prop_assert_eq!(sink.delivered_count(), distinct.len() as u64);
        prop_assert_eq!(
            sink.duplicate_arrivals(),
            (copies.len() - distinct.len()) as u64
        );
    }

    /// Source sequence numbers are strictly increasing and budgets follow
    /// the configured α.
    #[test]
    fn source_reports_well_formed(cost_adv in 0u32..30, count in 1usize..20) {
        let config = GrabConfig::paper();
        let mut source = GrabSource::new(NodeId(0), config.clone());
        source.on_adv(1, cost_adv);
        let mut last_seq = None;
        for _ in 0..count {
            let r = source.generate().unwrap();
            if let Some(prev) = last_seq {
                prop_assert_eq!(r.seq, prev + 1);
            }
            last_seq = Some(r.seq);
            prop_assert_eq!(r.hops, 1);
            prop_assert_eq!(r.budget, config.hop_budget(r.sender_cost));
        }
        prop_assert_eq!(source.generated(), count as u64);
    }
}
