//! Diagnostic rendering: rustc-style text for humans, JSON for CI.

use crate::rules::Diagnostic;
use crate::walk::LintReport;

/// Renders one diagnostic in the familiar rustc error shape.
pub fn render_human(d: &Diagnostic) -> String {
    let gutter = d.line.to_string().len();
    format!(
        "error[{rule}]: {msg}\n{pad:>gutter$}--> {file}:{line}:{col}\n\
         {pad:>gutter$} |\n{line:>gutter$} | {snippet}\n{pad:>gutter$} |\n",
        rule = d.rule,
        msg = d.message,
        file = d.file,
        line = d.line,
        col = d.column,
        snippet = d.snippet,
        pad = "",
        gutter = gutter + 1,
    )
}

/// Renders the whole report for terminal consumption.
pub fn render_report(report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&render_human(d));
        out.push('\n');
    }
    out.push_str(&format!(
        "peas-lint: {} violation{} ({} waived) across {} files\n",
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        },
        report.waived,
        report.files_scanned,
    ));
    out
}

/// Renders the report as a single JSON object (stable schema for CI).
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{\"version\":1,\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"column\":{},\"message\":{},\"snippet\":{}}}",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            d.column,
            json_str(&d.message),
            json_str(&d.snippet),
        ));
    }
    out.push_str(&format!(
        "],\"summary\":{{\"violations\":{},\"waived\":{},\"files_scanned\":{}}}}}",
        report.diagnostics.len(),
        report.waived,
        report.files_scanned,
    ));
    out
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "d1-std-hash",
            file: "crates/sim/src/world.rs".to_string(),
            line: 178,
            column: 20,
            message: "std hash collections iterate in randomized order".to_string(),
            snippet: "event_reports: std::collections::HashSet<(u32, u64)>,".to_string(),
        }
    }

    #[test]
    fn human_rendering_is_rustc_shaped() {
        let text = render_human(&diag());
        assert!(text.starts_with("error[d1-std-hash]:"));
        assert!(text.contains("--> crates/sim/src/world.rs:178:20"));
        assert!(text.contains("178 | event_reports:"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut d = diag();
        d.snippet = "say \"hi\"\tand \\ done".to_string();
        let report = LintReport {
            diagnostics: vec![d],
            waived: 2,
            files_scanned: 5,
        };
        let json = render_json(&report);
        assert!(json.contains("\"say \\\"hi\\\"\\tand \\\\ done\""));
        assert!(json.contains("\"summary\":{\"violations\":1,\"waived\":2,\"files_scanned\":5}"));
        // Balanced braces outside strings is a cheap well-formedness proxy.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_report_renders_clean_summary() {
        let report = LintReport::default();
        let text = render_report(&report);
        assert!(text.contains("0 violations"));
        let json = render_json(&report);
        assert!(json.contains("\"diagnostics\":[]"));
    }
}
