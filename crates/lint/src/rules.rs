//! The rule set: what `peas-lint` enforces and where.
//!
//! Rules are scoped by crate (directory name under `crates/`) and by file
//! kind: library sources (`src/**`), binary frontends (`src/bin/**` and
//! `src/main.rs`). Integration tests, benches and examples are not
//! scanned at all, and `#[cfg(test)] mod` blocks inside library files are
//! exempt from every rule — tests may freely use `HashMap`, `unwrap()` and
//! wall clocks without endangering simulation determinism.
//!
//! Every diagnostic can be waived in place:
//!
//! ```text
//! // peas-lint: allow(r1-unchecked-panic) -- queue slot is always occupied here
//! ```
//!
//! on the offending line or the line directly above it. The reason after
//! `--` is mandatory; a waiver without one is itself a diagnostic.

use crate::sanitize::{is_ident, sanitize};

/// Crates that hold simulation logic: anything here feeds the event loop
/// and therefore the golden fingerprints. `scenario` belongs here because
/// its compiler produces the configs those fingerprints are pinned to.
pub const SIM_LOGIC_CRATES: &[&str] = &[
    "des",
    "sim",
    "radio",
    "grab",
    "geom",
    "baselines",
    "scenario",
    "model",
];

/// Crates whose public API surface must document panics (R2).
pub const PANIC_DOC_CRATES: &[&str] = &["des", "sim"];

/// Rule: forbid `std` hash collections in sim-logic crates.
pub const D1: &str = "d1-std-hash";
/// Rule: forbid wall-clock reads outside bench code and bin frontends.
pub const D2: &str = "d2-wall-clock";
/// Rule: forbid ambient (OS) entropy everywhere.
pub const D3: &str = "d3-ambient-entropy";
/// Rule: every committed scenario file must be referenced by a test,
/// bench binary, example or another scenario (no dead experiments).
pub const D4: &str = "d4-scenario-drift";
/// Rule: forbid `BinaryHeap` in sim-logic crates — event scheduling must
/// go through `peas_des::EventQueue` (the ladder backend), not ad-hoc
/// heaps; the retained heap reference implementation carries waivers.
pub const D5: &str = "d5-heap-event-queue";
/// Rule: forbid `unwrap`/`expect` in sim-logic library code.
pub const R1: &str = "r1-unchecked-panic";
/// Rule: public functions in `des`/`sim` that can panic must say so.
pub const R2: &str = "r2-undocumented-panic";
/// Rule: forbid bare narrowing `as` casts to fixed-width integers in
/// sim-logic crates — a silently-wrapping cast turns an overflow into a
/// wrong-but-plausible fingerprint. Use `try_from` (handle or waive the
/// impossible case) instead. `as usize` is deliberately out of scope:
/// on every supported target it widens from the u32-and-smaller indices
/// the simulator uses, and flagging it would be pure noise.
pub const R3: &str = "r3-unchecked-cast";
/// Meta-rule: a waiver comment must carry a `-- <reason>`.
pub const W0: &str = "w0-waiver-without-reason";

/// All enforceable rule ids (what `allow(...)` may name).
pub const ALL_RULES: &[&str] = &[D1, D2, D3, D4, D5, R1, R2, R3];

/// Where a source file sits in its crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` (excluding `src/bin/` and `src/main.rs`).
    Lib,
    /// A binary frontend: `src/main.rs` or anything under `src/bin/`.
    Bin,
}

/// Identity of the file being scanned, used for rule scoping.
#[derive(Clone, Debug)]
pub struct FileCtx {
    /// Crate directory name (`des`, `sim`, ... or `peas-repro` for the
    /// workspace-root facade crate).
    pub crate_name: String,
    /// Path relative to the workspace root, for diagnostics.
    pub rel_path: String,
    /// Library or binary-frontend source.
    pub kind: FileKind,
}

/// One finding, pointing at original source coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (e.g. `d1-std-hash`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the match.
    pub column: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Outcome of scanning one file.
#[derive(Clone, Debug, Default)]
pub struct ScanResult {
    /// Violations found (not waived).
    pub diagnostics: Vec<Diagnostic>,
    /// Matches suppressed by a well-formed waiver.
    pub waived: usize,
}

struct TokenRule {
    id: &'static str,
    patterns: &'static [&'static str],
    message: &'static str,
}

const TOKEN_RULES: &[TokenRule] = &[
    TokenRule {
        id: D1,
        patterns: &["HashMap", "HashSet"],
        message: "std hash collections iterate in randomized order; use BTreeMap/BTreeSet, \
                  a slot-indexed Vec, or peas_des::DetMap/DetSet in sim-logic crates",
    },
    TokenRule {
        id: D2,
        patterns: &[
            "Instant::now",
            "SystemTime",
            "UNIX_EPOCH",
            "std::time::Instant",
        ],
        message: "wall-clock reads make runs irreproducible; simulation code must use \
                  peas_des::SimTime (wall clocks are allowed only in `bench` and bin frontends)",
    },
    TokenRule {
        id: D3,
        patterns: &[
            "thread_rng",
            "from_entropy",
            "OsRng",
            "getrandom",
            "RandomState",
            "DefaultHasher",
            "rand::random",
        ],
        message: "ambient OS entropy breaks seed-reproducibility; draw randomness from a \
                  peas_des::SimRng per-entity stream instead",
    },
    TokenRule {
        id: D5,
        patterns: &["BinaryHeap"],
        message: "ad-hoc heaps bypass the deterministic event queue; schedule through \
                  peas_des::EventQueue (ladder backend) — only the retained heap reference \
                  implementation may use BinaryHeap, under a waiver",
    },
    TokenRule {
        id: R1,
        patterns: &[".unwrap()", ".expect("],
        message: "unchecked panic in sim-logic library code; handle the None/Err case, or \
                  waive with the invariant that makes this unreachable",
    },
    TokenRule {
        id: R3,
        patterns: &["as u8", "as u16", "as u32", "as i32"],
        message: "bare `as` cast to a fixed-width integer silently wraps on overflow; use \
                  `T::try_from(...)` and handle the error, or waive with the bound that \
                  makes truncation impossible",
    },
];

fn rule_applies(id: &str, ctx: &FileCtx) -> bool {
    match id {
        // Hash collections: sim-logic crates, library and bin targets alike.
        _ if id == D1 => SIM_LOGIC_CRATES.contains(&ctx.crate_name.as_str()),
        // Wall clocks: everywhere except the bench crate and bin frontends
        // (frontends legitimately measure elapsed real time).
        _ if id == D2 => ctx.crate_name != "bench" && ctx.kind == FileKind::Lib,
        // Ambient entropy: everywhere, including frontends — a seeded run
        // must be reproducible end to end.
        _ if id == D3 => true,
        // Ad-hoc heaps: sim-logic crates, library and bin targets alike —
        // any heap feeding the event loop endangers the delivery order.
        _ if id == D5 => SIM_LOGIC_CRATES.contains(&ctx.crate_name.as_str()),
        // Unchecked panics: sim-logic library code only.
        _ if id == R1 => {
            SIM_LOGIC_CRATES.contains(&ctx.crate_name.as_str()) && ctx.kind == FileKind::Lib
        }
        _ if id == R2 => {
            PANIC_DOC_CRATES.contains(&ctx.crate_name.as_str()) && ctx.kind == FileKind::Lib
        }
        // Narrowing casts: sim-logic crates, library and bin targets alike —
        // a wrapped count in a report is as wrong as one in the event loop.
        _ if id == R3 => SIM_LOGIC_CRATES.contains(&ctx.crate_name.as_str()),
        _ => false,
    }
}

/// A waiver parsed from a `// peas-lint: allow(...) -- reason` comment
/// (or `# peas-lint: ...` in scenario files).
#[derive(Clone, Debug)]
pub(crate) enum Waiver {
    /// Well-formed: the named rules are waived.
    Allow(Vec<String>),
    /// `allow(...)` present but the `-- reason` is missing or empty.
    MissingReason,
}

fn parse_waiver(line: &str) -> Option<Waiver> {
    parse_comment_waiver(line, "//")
}

/// Waiver parsing parameterized over the comment leader, shared with the
/// scenario-drift scan (`.peas` files comment with `#`).
pub(crate) fn parse_comment_waiver(line: &str, comment: &str) -> Option<Waiver> {
    let marker = "peas-lint:";
    let at = line.find(marker)?;
    // Must live in a comment, not in code (string literals never reach
    // here because waiver parsing only consults comment syntax).
    if !line[..at].contains(comment) {
        return None;
    }
    let rest = line[at + marker.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let after = rest[close + 1..].trim_start();
    match after.strip_prefix("--") {
        Some(reason) if !reason.trim().is_empty() => Some(Waiver::Allow(rules)),
        _ => Some(Waiver::MissingReason),
    }
}

/// Finds `pattern` in `line` with identifier boundaries on both ends (a
/// pattern starting/ending with a non-identifier char anchors itself).
fn find_token(line: &str, pattern: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = line[start..].find(pattern) {
        let at = start + pos;
        let before_ok = at == 0
            || !is_ident(line[..at].chars().next_back().unwrap_or(' '))
            || !pattern.starts_with(is_ident);
        let end = at + pattern.len();
        let after_ok = end >= line.len()
            || !is_ident(line[end..].chars().next().unwrap_or(' '))
            || !pattern.ends_with(is_ident);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + pattern.len();
    }
    None
}

/// Marks every line inside a `#[cfg(test)] mod ... { ... }` region.
fn test_region_mask(slines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; slines.len()];
    let mut depth: i64 = 0;
    let mut pending_cfg_test = false;
    let mut skip_from_depth: Option<i64> = None;
    for (i, line) in slines.iter().enumerate() {
        if skip_from_depth.is_none() {
            if line.contains("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if pending_cfg_test && find_token(line, "mod").is_some() && line.contains('{') {
                skip_from_depth = Some(depth);
                pending_cfg_test = false;
            } else {
                let t = line.trim();
                // Attributes/blank lines between `#[cfg(test)]` and `mod`
                // keep the pending flag alive; real code clears it.
                if !(t.is_empty() || t.starts_with("#[")) {
                    pending_cfg_test = false;
                }
            }
        }
        if skip_from_depth.is_some() {
            mask[i] = true;
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(d) = skip_from_depth {
            if depth <= d {
                skip_from_depth = None;
            }
        }
    }
    mask
}

/// Tokens whose presence in a function body means the function can panic.
const PANIC_TOKENS: &[&str] = &[
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
    ".unwrap()",
    ".expect(",
];

fn body_can_panic(body: &str) -> bool {
    PANIC_TOKENS.iter().any(|t| find_token(body, t).is_some())
}

/// Detects a `pub fn` item start (plain `pub` only — `pub(crate)` is not
/// public API). Allows `const`/`async`/`unsafe` qualifiers between.
fn is_pub_fn_line(sline: &str) -> bool {
    let Some(at) = find_token(sline, "pub") else {
        return false;
    };
    let mut rest = sline[at + 3..].trim_start();
    loop {
        if let Some(r) = rest.strip_prefix("fn") {
            return r.starts_with(|c: char| c.is_whitespace() || !is_ident(c));
        }
        let mut advanced = false;
        for q in ["const", "async", "unsafe"] {
            if let Some(r) = rest.strip_prefix(q) {
                rest = r.trim_start();
                advanced = true;
                break;
            }
        }
        if !advanced {
            return false;
        }
    }
}

/// Scans one file and returns its diagnostics plus the waived count.
pub fn scan_source(ctx: &FileCtx, original: &str) -> ScanResult {
    let sanitized = sanitize(original);
    let olines: Vec<&str> = original.lines().collect();
    let slines: Vec<&str> = sanitized.lines().collect();
    let mask = test_region_mask(&slines);
    let mut out = ScanResult::default();

    // Waivers come from the original text (the sanitizer blanks comments).
    let waivers: Vec<Option<Waiver>> = olines.iter().map(|l| parse_waiver(l)).collect();
    for (i, w) in waivers.iter().enumerate() {
        if mask[i] {
            continue; // test modules are exempt from every rule, W0 included
        }
        if let Some(Waiver::MissingReason) = w {
            out.diagnostics.push(Diagnostic {
                rule: W0,
                file: ctx.rel_path.clone(),
                line: i + 1,
                column: 1,
                message: "waiver has no justification: write \
                          `// peas-lint: allow(<rule>) -- <reason>`"
                    .to_string(),
                snippet: olines[i].trim().to_string(),
            });
        }
    }
    let waived_here = |line_idx: usize, rule: &str| -> bool {
        let hit = |w: &Option<Waiver>| matches!(w, Some(Waiver::Allow(rules)) if rules.iter().any(|r| r == rule));
        hit(&waivers[line_idx]) || (line_idx > 0 && hit(&waivers[line_idx - 1]))
    };

    for rule in TOKEN_RULES {
        if !rule_applies(rule.id, ctx) {
            continue;
        }
        for (i, sline) in slines.iter().enumerate() {
            if mask[i] {
                continue;
            }
            let Some(col) = rule.patterns.iter().find_map(|p| find_token(sline, p)) else {
                continue;
            };
            if waived_here(i, rule.id) {
                out.waived += 1;
            } else {
                out.diagnostics.push(Diagnostic {
                    rule: rule.id,
                    file: ctx.rel_path.clone(),
                    line: i + 1,
                    column: col + 1,
                    message: rule.message.to_string(),
                    snippet: olines.get(i).unwrap_or(&"").trim().to_string(),
                });
            }
        }
    }

    if rule_applies(R2, ctx) {
        scan_undocumented_panics(ctx, &olines, &slines, &mask, &waived_here, &mut out);
    }

    out.diagnostics.sort_by_key(|d| (d.line, d.column));
    out
}

/// R2: every `pub fn` in the panic-doc crates whose body contains a panic
/// token must carry a `# Panics` section in its doc comment.
fn scan_undocumented_panics(
    ctx: &FileCtx,
    olines: &[&str],
    slines: &[&str],
    mask: &[bool],
    waived_here: &dyn Fn(usize, &str) -> bool,
    out: &mut ScanResult,
) {
    for i in 0..slines.len() {
        if mask[i] || !is_pub_fn_line(slines[i]) {
            continue;
        }
        let Some(body) = extract_body(slines, i) else {
            continue;
        };
        if !body_can_panic(&body) {
            continue;
        }
        if doc_block_mentions_panics(olines, i) {
            continue;
        }
        if waived_here(i, R2) {
            out.waived += 1;
        } else {
            out.diagnostics.push(Diagnostic {
                rule: R2,
                file: ctx.rel_path.clone(),
                line: i + 1,
                column: 1,
                message: "public function can panic but its doc comment has no `# Panics` \
                          section"
                    .to_string(),
                snippet: olines.get(i).unwrap_or(&"").trim().to_string(),
            });
        }
    }
}

/// Joins the sanitized body of the fn whose signature starts on `start`:
/// from its opening `{` to the matching `}`. Returns `None` for bodyless
/// declarations (a `;` before any `{`).
fn extract_body(slines: &[&str], start: usize) -> Option<String> {
    let mut body = String::new();
    let mut depth: i64 = 0;
    let mut opened = false;
    for sline in slines.iter().skip(start) {
        for c in sline.chars() {
            if !opened {
                match c {
                    '{' => {
                        opened = true;
                        depth = 1;
                    }
                    ';' => return None,
                    _ => {}
                }
            } else {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(body);
                        }
                    }
                    _ => body.push(c),
                }
            }
        }
        if opened {
            body.push('\n');
        }
    }
    // Unbalanced braces (should not happen on real code): treat what we
    // collected as the body.
    opened.then_some(body)
}

/// Walks upward from the `pub fn` line across attributes and plain
/// comments; `true` if the attached `///` doc block has a `# Panics`
/// heading.
fn doc_block_mentions_panics(olines: &[&str], fn_line: usize) -> bool {
    for j in (0..fn_line).rev() {
        let t = olines[j].trim();
        if t.starts_with("///") {
            if t.trim_start_matches('/').trim().starts_with("# Panics") {
                return true;
            }
        } else if t.starts_with("#[") || t.starts_with("//") || t.is_empty() {
            // Attributes, ordinary comments and blank lines do not detach
            // the doc block.
            continue;
        } else {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_lib(path: &str) -> FileCtx {
        FileCtx {
            crate_name: "sim".to_string(),
            rel_path: path.to_string(),
            kind: FileKind::Lib,
        }
    }

    fn rules_of(r: &ScanResult) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d1_fires_on_hash_collections() {
        let r = scan_source(&sim_lib("x.rs"), "use std::collections::HashMap;\n");
        assert_eq!(rules_of(&r), vec![D1]);
    }

    #[test]
    fn d1_ignores_non_sim_crates() {
        let ctx = FileCtx {
            crate_name: "analysis".to_string(),
            rel_path: "x.rs".to_string(),
            kind: FileKind::Lib,
        };
        let r = scan_source(&ctx, "use std::collections::HashMap;\n");
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn d2_allows_bin_frontends() {
        let src = "let t = std::time::Instant::now();\n";
        let lib = scan_source(&sim_lib("x.rs"), src);
        assert_eq!(rules_of(&lib), vec![D2]);
        let bin = FileCtx {
            crate_name: "sim".to_string(),
            rel_path: "src/bin/x.rs".to_string(),
            kind: FileKind::Bin,
        };
        assert!(scan_source(&bin, src).diagnostics.is_empty());
    }

    #[test]
    fn d3_fires_everywhere_even_bins() {
        let bin = FileCtx {
            crate_name: "bench".to_string(),
            rel_path: "src/bin/x.rs".to_string(),
            kind: FileKind::Bin,
        };
        let r = scan_source(&bin, "let mut rng = rand::thread_rng();\n");
        assert_eq!(rules_of(&r), vec![D3]);
    }

    #[test]
    fn d5_fires_on_binary_heap_and_waiver_suppresses() {
        let src = "use std::collections::BinaryHeap;\n";
        let r = scan_source(&sim_lib("x.rs"), src);
        assert_eq!(rules_of(&r), vec![D5]);
        let waived =
            format!("// peas-lint: allow(d5-heap-event-queue) -- heap reference impl\n{src}");
        let r = scan_source(&sim_lib("x.rs"), &waived);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.waived, 1);
        // Outside sim-logic crates the rule is silent.
        let ctx = FileCtx {
            crate_name: "analysis".to_string(),
            rel_path: "x.rs".to_string(),
            kind: FileKind::Lib,
        };
        assert!(scan_source(&ctx, src).diagnostics.is_empty());
    }

    #[test]
    fn r1_fires_and_waiver_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = scan_source(&sim_lib("x.rs"), src);
        assert_eq!(rules_of(&r), vec![R1]);
        let waived = format!("// peas-lint: allow(r1-unchecked-panic) -- test invariant\n{src}");
        let r = scan_source(&sim_lib("x.rs"), &waived);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn r3_fires_on_narrowing_casts_and_waiver_suppresses() {
        let src = "fn f(x: usize) -> u32 { x as u32 }\n";
        let r = scan_source(&sim_lib("x.rs"), src);
        assert_eq!(rules_of(&r), vec![R3]);
        let waived =
            format!("// peas-lint: allow(r3-unchecked-cast) -- x < 2^32 by construction\n{src}");
        let r = scan_source(&sim_lib("x.rs"), &waived);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn r3_ignores_usize_casts_and_non_sim_crates() {
        // `as usize` widens on every supported target; not in scope.
        let src = "fn f(x: u32) -> usize { x as usize }\n";
        assert!(scan_source(&sim_lib("x.rs"), src).diagnostics.is_empty());
        // Outside sim-logic crates the rule is silent.
        let ctx = FileCtx {
            crate_name: "analysis".to_string(),
            rel_path: "x.rs".to_string(),
            kind: FileKind::Lib,
        };
        let narrowing = "fn f(x: usize) -> u32 { x as u32 }\n";
        assert!(scan_source(&ctx, narrowing).diagnostics.is_empty());
    }

    #[test]
    fn r3_identifier_boundaries_hold() {
        // An identifier ending in `as` (here `atlas`) must not anchor a
        // match, and `as u32` buried in a wider ident (`u32x4`) must not
        // match either. The scan is textual, so validity is irrelevant.
        let src = "fn f(atlas: Atlas) { atlas u32; x as u32x4 }\n";
        let r = scan_source(&sim_lib("x.rs"), src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn waiver_without_reason_is_flagged() {
        let src =
            "// peas-lint: allow(r1-unchecked-panic)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = scan_source(&sim_lib("x.rs"), src);
        assert_eq!(rules_of(&r), vec![W0, R1]);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "pub fn ok() {}\n\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    #[test]\n    fn t() { let x: Option<u32> = None; x.unwrap(); }\n}\n";
        let r = scan_source(&sim_lib("x.rs"), src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn code_after_test_module_is_scanned_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\nuse std::collections::HashSet;\n";
        let r = scan_source(&sim_lib("x.rs"), src);
        assert_eq!(rules_of(&r), vec![D1]);
        assert_eq!(r.diagnostics[0].line, 6);
    }

    #[test]
    fn doc_mentions_do_not_fire() {
        let src = "/// Unlike a `HashMap`, iteration is sorted; `x.unwrap()` in docs is fine.\npub fn f() {}\n";
        let r = scan_source(&sim_lib("x.rs"), src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn identifier_boundaries_respected() {
        let r = scan_source(
            &sim_lib("x.rs"),
            "struct MyHashMapLike; fn f(t: SimInstant) {}\n",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    fn des_lib() -> FileCtx {
        FileCtx {
            crate_name: "des".to_string(),
            rel_path: "src/x.rs".to_string(),
            kind: FileKind::Lib,
        }
    }

    #[test]
    fn r2_fires_on_undocumented_panicky_pub_fn() {
        let src = "/// Frobnicates.\npub fn frob(x: u32) -> u32 {\n    assert!(x > 0);\n    x\n}\n";
        let r = scan_source(&des_lib(), src);
        assert_eq!(rules_of(&r), vec![R2]);
        assert_eq!(r.diagnostics[0].line, 2);
    }

    #[test]
    fn r2_satisfied_by_panics_section() {
        let src = "/// Frobnicates.\n///\n/// # Panics\n///\n/// Panics if `x` is zero.\npub fn frob(x: u32) -> u32 {\n    assert!(x > 0);\n    x\n}\n";
        let r = scan_source(&des_lib(), src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn r2_ignores_private_and_panic_free_fns() {
        let src = "fn private(x: u32) { assert!(x > 0); }\npub fn calm(x: u32) -> u32 { x + 1 }\n";
        let r = scan_source(&des_lib(), src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn r2_debug_assert_is_not_a_panic_token() {
        let src = "/// Checked.\npub fn f(x: u32) -> u32 {\n    debug_assert!(x > 0);\n    x\n}\n";
        let r = scan_source(&des_lib(), src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn r2_body_braces_in_strings_do_not_confuse() {
        let src = "/// Fmt.\npub fn f(x: u32) -> String {\n    format!(\"{{x}} is {x}\")\n}\npub fn g(y: u32) -> u32 {\n    if y == 0 { panic!(\"zero\") }\n    y\n}\n";
        let r = scan_source(&des_lib(), src);
        // Only `g` fires: the braces inside `f`'s format string must not
        // swallow the rest of the file into `f`'s body.
        assert_eq!(rules_of(&r), vec![R2]);
        assert_eq!(r.diagnostics[0].line, 5);
    }
}
