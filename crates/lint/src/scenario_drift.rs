//! D4 `d4-scenario-drift`: no dead experiments.
//!
//! Every `.peas` file committed under `<root>/scenarios/` must be
//! *referenced* — its file name (with extension) appearing literally — in
//! at least one of:
//!
//! - an integration test under `<root>/tests/`,
//! - a bench source under `<root>/crates/bench/src/` (the `scenario`
//!   driver and the paper binaries),
//! - an example (`<root>/examples/*.rs` or a sibling `.peas`),
//! - another scenario file (an `extends` chain keeps a base alive).
//!
//! Golden snapshots (`scenarios/golden/*.golden`) are *outputs*, not
//! references — a scenario only a snapshot knows about is exactly the
//! drift this rule exists to catch: an experiment nothing runs anymore.
//!
//! A retired scenario that is deliberately kept can waive the rule in
//! place with the scenario-comment form of the usual waiver:
//!
//! ```text
//! # peas-lint: allow(d4-scenario-drift) -- kept for the 2026 rerun writeup
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{parse_comment_waiver, Diagnostic, Waiver, D4, W0};
use crate::walk::LintReport;

/// Directories (relative to the workspace root) whose sources count as
/// scenario references, with the extension scanned in each.
const REFERENCE_TREES: &[(&str, &str)] = &[
    ("tests", "rs"),
    ("crates/bench/src", "rs"),
    ("examples", "rs"),
    ("examples", "peas"),
];

/// Audits `<root>/scenarios/` for unreferenced scenario files. A missing
/// `scenarios/` directory is fine (not every checkout has a corpus).
///
/// # Errors
///
/// Returns a message when a directory or file under audit cannot be read.
pub(crate) fn scan_scenarios(root: &Path, report: &mut LintReport) -> Result<(), String> {
    let dir = root.join("scenarios");
    if !dir.is_dir() {
        return Ok(());
    }
    let mut scenario_files = Vec::new();
    collect_ext(&dir, "peas", &mut scenario_files)
        .map_err(|e| format!("walking {}: {e}", dir.display()))?;
    scenario_files.sort();

    // The reference corpus: (path, contents) of everything that may name
    // a scenario file. Scenario files themselves are included so
    // `extends` chains keep their bases alive.
    let mut references: Vec<(PathBuf, String)> = Vec::new();
    for (sub, ext) in REFERENCE_TREES {
        let tree = root.join(sub);
        if !tree.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_ext(&tree, ext, &mut files)
            .map_err(|e| format!("walking {}: {e}", tree.display()))?;
        for file in files {
            let text = fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            references.push((file, text));
        }
    }
    for file in &scenario_files {
        let text =
            fs::read_to_string(file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        references.push((file.clone(), text));
    }

    for file in &scenario_files {
        let Some(name) = file.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = references
            .iter()
            .find(|(p, _)| p == file)
            .map(|(_, text)| text.clone())
            .unwrap_or_default();

        // Scenario-file waivers use `#` comments; a waiver without a
        // reason is a W0 diagnostic exactly as in Rust sources.
        let mut waives_d4 = false;
        for (i, line) in source.lines().enumerate() {
            match parse_comment_waiver(line, "#") {
                Some(Waiver::Allow(rules)) if rules.iter().any(|r| r == D4) => waives_d4 = true,
                Some(Waiver::MissingReason) => report.diagnostics.push(Diagnostic {
                    rule: W0,
                    file: rel.clone(),
                    line: i + 1,
                    column: 1,
                    message: "waiver has no justification: write \
                              `# peas-lint: allow(<rule>) -- <reason>`"
                        .to_string(),
                    snippet: line.trim().to_string(),
                }),
                _ => {}
            }
        }

        let referenced = references
            .iter()
            .any(|(path, text)| path != file && text.contains(&name));
        if referenced {
            continue;
        }
        if waives_d4 {
            report.waived += 1;
        } else {
            report.diagnostics.push(Diagnostic {
                rule: D4,
                file: rel,
                line: 1,
                column: 1,
                message: format!(
                    "scenario `{name}` is referenced by no test, bench source, example or \
                     other scenario; wire it into the conformance corpus or delete it"
                ),
                snippet: String::new(),
            });
        }
    }
    Ok(())
}

fn collect_ext(dir: &Path, ext: &str, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_ext(&path, ext, out)?;
        } else if path.extension().is_some_and(|e| e == ext) {
            out.push(path);
        }
    }
    Ok(())
}
