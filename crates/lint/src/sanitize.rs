//! Lexical sanitizer: blanks comments, string literals and char literals
//! out of Rust source while preserving line structure.
//!
//! Every rule in `peas-lint` pattern-matches over *sanitized* text, so a
//! diagnostic message that merely mentions `HashMap`, a doc example using
//! `unwrap()`, or a `'{'` char literal can never produce a false positive
//! (nor corrupt the brace counting used to delimit test modules and
//! function bodies). Blanked spans are replaced with spaces of the same
//! width; newlines are kept, so byte offsets of surviving code and all
//! line numbers map 1:1 onto the original source.

/// Returns `source` with comments, string literals and char literals
/// replaced by spaces. Newlines (including those inside block comments
/// and multi-line strings) are preserved.
pub fn sanitize(source: &str) -> String {
    let b: Vec<char> = source.chars().collect();
    let n = b.len();
    let mut out: Vec<char> = Vec::with_capacity(n);
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment, nested per Rust's lexer.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"...", r#"..."#, br"...", br#"..."#.
        if (c == 'r' || (c == 'b' && i + 1 < n && b[i + 1] == 'r'))
            && (i == 0 || !is_ident(b[i - 1]))
        {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                out.resize(out.len() + (j - i + 1), ' ');
                i = j + 1;
                while i < n {
                    if b[i] == '"' {
                        let mut k = i + 1;
                        let mut h = 0usize;
                        while k < n && h < hashes && b[k] == '#' {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            out.resize(out.len() + (k - i), ' ');
                            i = k;
                            break;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
            // `r`/`br` not followed by a raw string: plain identifier chars.
        }
        // Cooked string, possibly a byte string b"...".
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                out.push(blank(b[i]));
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime. A quote opens a char literal when what
        // follows is an escape sequence or a single char closed by a quote;
        // otherwise it is a lifetime (`'a`) and passes through.
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                let mut j = i + 2;
                if j < n && b[j] == 'u' {
                    while j < n && b[j] != '}' {
                        j += 1;
                    }
                    j += 1;
                } else if j < n && b[j] == 'x' {
                    j += 3;
                } else {
                    j += 1;
                }
                if j < n && b[j] == '\'' {
                    out.resize(out.len() + (j - i + 1), ' ');
                    i = j + 1;
                    continue;
                }
            } else if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                out.push(' ');
                out.push(' ');
                out.push(' ');
                i += 3;
                continue;
            }
            out.push('\'');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

/// `true` for characters that can continue a Rust identifier.
pub fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1;";
        let s = sanitize(src);
        assert!(!s.contains("HashMap"), "{s:?}");
        assert!(s.contains("let y = 1;"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn doc_comments_are_blanked() {
        let s = sanitize("/// call .unwrap() freely\npub fn f() {}");
        assert!(!s.contains("unwrap"));
        assert!(s.contains("pub fn f() {}"));
    }

    #[test]
    fn block_comments_nest_and_keep_newlines() {
        let src = "a /* x /* y */ z\nstill comment */ b";
        let s = sanitize(src);
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with('a'));
        assert!(s.ends_with('b'));
        assert!(!s.contains('x') && !s.contains('z'));
    }

    #[test]
    fn char_literals_do_not_break_brace_counting() {
        let s = sanitize("if c == '{' || c == '}' { body('\\n'); }");
        let opens = s.matches('{').count();
        let closes = s.matches('}').count();
        assert_eq!(opens, 1);
        assert_eq!(closes, 1);
        assert!(s.contains("body"));
    }

    #[test]
    fn lifetimes_survive() {
        let s = sanitize("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(s.contains("<'a>"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = sanitize(r###"let p = r#"thread_rng "quoted" {"#; let q = 2;"###);
        assert!(!s.contains("thread_rng"));
        assert!(s.contains("let q = 2;"));
        assert_eq!(s.matches('{').count(), 0);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let s = sanitize("let q = '\\''; let brace = '{';");
        assert_eq!(s.matches('{').count(), 0);
        assert!(s.contains("let brace ="));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let src = "let s = \"line one\nInstant::now\n\"; done();";
        let s = sanitize(src);
        assert_eq!(s.lines().count(), 3);
        assert!(!s.contains("Instant"));
        assert!(s.contains("done();"));
    }
}
