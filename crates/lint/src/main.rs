//! CLI frontend for `peas-lint` (see `lib.rs` / `LINTS.md` for the rules).
//!
//! ```text
//! cargo run -p peas-lint               # human-readable, exit 1 on violations
//! cargo run -p peas-lint -- --json     # machine-readable, same exit codes
//! cargo run -p peas-lint -- --root X   # audit a different workspace root
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use peas_lint::{exit_code, render_json, render_report, run_lint};

const USAGE: &str = "usage: peas-lint [--json] [--root <workspace-root>]

Audits the PEAS workspace for determinism & robustness violations.
Exit codes: 0 clean, 1 violations found, 2 usage/IO error.";

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match run_lint(&root) {
        Ok(report) => {
            if json {
                println!("{}", render_json(&report));
            } else {
                print!("{}", render_report(&report));
            }
            ExitCode::from(exit_code(&report) as u8)
        }
        Err(e) => {
            eprintln!("peas-lint: {e}");
            ExitCode::from(2)
        }
    }
}
