//! Workspace walker: discovers the Rust sources `peas-lint` audits.
//!
//! The layout is fixed by convention, not parsed from Cargo metadata (the
//! tool must stay dependency-free): every directory under `<root>/crates/`
//! is a crate whose name is the directory name, plus the workspace-root
//! facade package (`<root>/src`, named `peas-repro`). Only `src/` trees
//! are scanned — integration tests, benches, examples and fixtures are
//! out of scope by design (see `LINTS.md`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{scan_source, Diagnostic, FileCtx, FileKind};
use crate::scenario_drift::scan_scenarios;

/// Aggregate result of auditing a workspace.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All violations, sorted by (file, line, column).
    pub diagnostics: Vec<Diagnostic>,
    /// Matches suppressed by well-formed waivers.
    pub waived: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when the workspace is clean (CI gate passes).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Audits the workspace rooted at `root`.
///
/// # Errors
///
/// Returns a message when `root` has no `crates/` directory or a source
/// file cannot be read.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no `crates/` directory — pass the workspace root via --root",
            root.display()
        ));
    }
    let mut report = LintReport::default();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        scan_src_tree(root, &dir.join("src"), &crate_name, &mut report)?;
    }
    // The facade package at the workspace root.
    scan_src_tree(root, &root.join("src"), "peas-repro", &mut report)?;
    // D4: the scenario corpus must not accumulate dead experiments.
    scan_scenarios(root, &mut report)?;
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.column).cmp(&(&b.file, b.line, b.column)));
    Ok(report)
}

fn scan_src_tree(
    root: &Path,
    src: &Path,
    crate_name: &str,
    report: &mut LintReport,
) -> Result<(), String> {
    if !src.is_dir() {
        return Ok(());
    }
    let mut files = Vec::new();
    collect_rs_files(src, &mut files).map_err(|e| format!("walking {}: {e}", src.display()))?;
    files.sort();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let in_src = file.strip_prefix(src).unwrap_or(&file);
        let kind = if in_src.starts_with("bin") || in_src == Path::new("main.rs") {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        let ctx = FileCtx {
            crate_name: crate_name.to_string(),
            rel_path: rel,
            kind,
        };
        let source =
            fs::read_to_string(&file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        let result = scan_source(&ctx, &source);
        report.files_scanned += 1;
        report.waived += result.waived;
        report.diagnostics.extend(result.diagnostics);
    }
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
