//! # peas-lint — workspace determinism & robustness auditor
//!
//! PEAS's evaluation depends on bit-reproducible simulation runs: the
//! golden fingerprints (`tests/golden.rs`) and the differential proptests
//! only stay byte-identical if no nondeterminism leaks into sim logic.
//! `peas-lint` *enforces* that discipline statically instead of hoping a
//! test happens to catch a randomized iteration order.
//!
//! The rule set (see `LINTS.md` at the workspace root for the policy
//! rationale and the waiver syntax):
//!
//! | rule | scope | what it forbids |
//! |------|-------|-----------------|
//! | `d1-std-hash` | sim-logic crates | `HashMap`/`HashSet` (randomized iteration order) |
//! | `d2-wall-clock` | all but `bench` + bin frontends | `Instant::now`, `SystemTime`, `UNIX_EPOCH` |
//! | `d3-ambient-entropy` | everywhere | `thread_rng`, `OsRng`, `RandomState`, ... |
//! | `d4-scenario-drift` | `scenarios/*.peas` | scenario files no test, bench, example or scenario references |
//! | `d5-heap-event-queue` | sim-logic crates | `BinaryHeap` outside the heap reference implementation |
//! | `r1-unchecked-panic` | sim-logic library code | `.unwrap()` / `.expect(...)` |
//! | `r2-undocumented-panic` | `des` + `sim` public API | panicking `pub fn` without a `# Panics` doc |
//!
//! Violations are waived in place with a justification:
//!
//! ```text
//! // peas-lint: allow(r1-unchecked-panic) -- slot map invariant: id was handed out by us
//! ```
//!
//! The binary (`cargo run -p peas-lint`) exits `0` on a clean workspace,
//! `1` when any unwaived diagnostic fires, `2` on usage errors — so CI can
//! gate on it directly. `--json` emits a machine-readable report.
//!
//! The analysis is lexical, not syntactic: sources are first run through
//! [`sanitize::sanitize`], which blanks comments, strings and char
//! literals, so pattern matches and the brace counting that delimits
//! `#[cfg(test)]` modules and function bodies only ever see real code.
//! That keeps the tool dependency-free (no syn/proc-macro stack) while
//! staying byte-accurate about line/column positions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod rules;
pub mod sanitize;
mod scenario_drift;
pub mod walk;

pub use report::{render_json, render_report};
pub use rules::{scan_source, Diagnostic, FileCtx, FileKind, ScanResult, ALL_RULES};
pub use walk::{run_lint, LintReport};

/// The process exit code a report maps to (`0` clean, `1` violations).
pub fn exit_code(report: &LintReport) -> i32 {
    if report.is_clean() {
        0
    } else {
        1
    }
}
