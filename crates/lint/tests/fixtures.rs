//! Fixture-tree tests: one fixture per rule that must fire, one waived
//! fixture per rule that must not — plus the CI gate's core promise that
//! the real workspace is clean.

use std::path::{Path, PathBuf};

use peas_lint::rules::{D1, D2, D3, D4, D5, R1, R2, R3};
use peas_lint::{exit_code, render_json, run_lint};

fn fixtures(tree: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(tree)
}

#[test]
fn every_rule_fires_on_its_violation_fixture() {
    let report = run_lint(&fixtures("violations")).expect("fixture tree readable");
    let fired: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    for rule in [D1, D2, D3, D4, D5, R1, R2, R3] {
        assert!(
            fired.contains(&rule),
            "rule {rule} did not fire; fired = {fired:?}"
        );
    }
    assert_eq!(report.waived, 0, "violation tree has no waivers");
    assert_eq!(exit_code(&report), 1, "violations must exit nonzero");
}

#[test]
fn violation_fixtures_point_at_the_right_files() {
    let report = run_lint(&fixtures("violations")).expect("fixture tree readable");
    let find = |rule: &str| {
        report
            .diagnostics
            .iter()
            .find(|d| d.rule == rule)
            .unwrap_or_else(|| panic!("{rule} missing"))
    };
    assert!(find(D1).file.ends_with("crates/sim/src/d1_hash.rs"));
    assert!(find(D2).file.ends_with("crates/sim/src/d2_clock.rs"));
    assert!(find(D3).file.ends_with("crates/sim/src/d3_entropy.rs"));
    assert!(find(D4).file.ends_with("scenarios/dead.peas"));
    assert!(find(D4).message.contains("dead.peas"));
    assert!(find(D5).file.ends_with("crates/sim/src/d5_heap.rs"));
    assert!(find(R1).file.ends_with("crates/grab/src/r1_panic.rs"));
    assert!(find(R2).file.ends_with("crates/des/src/r2_undoc.rs"));
    assert!(find(R3).file.ends_with("crates/model/src/r3_cast.rs"));
    assert!(find(R3).snippet.contains("as u32"));
    // Line/column anchors for a couple of them: d1's first hit is the
    // `use` on line 4; r1 points at the `.unwrap()` call.
    assert_eq!(find(D1).line, 4);
    assert!(find(R1).snippet.contains(".unwrap()"));
}

#[test]
fn waived_fixtures_are_silent_but_counted() {
    let report = run_lint(&fixtures("waived")).expect("fixture tree readable");
    assert!(
        report.diagnostics.is_empty(),
        "waived tree must be clean, got {:#?}",
        report.diagnostics
    );
    // One waived site per rule, except d1/d2/d5 which waive two sites
    // each; plus the waived retired.peas scenario (d4).
    assert_eq!(report.waived, 11, "waiver bookkeeping");
    assert_eq!(exit_code(&report), 0);
}

#[test]
fn json_output_round_trips_the_fixture_rules() {
    let report = run_lint(&fixtures("violations")).expect("fixture tree readable");
    let json = render_json(&report);
    for rule in [D1, D2, D3, D4, D5, R1, R2, R3] {
        assert!(
            json.contains(&format!("\"rule\":\"{rule}\"")),
            "{rule} in JSON"
        );
    }
    assert!(json.contains("\"summary\":{\"violations\":"));
}

#[test]
fn missing_crates_dir_is_a_usage_error() {
    let err = run_lint(&fixtures("violations").join("crates")).expect_err("no crates/ under here");
    assert!(err.contains("crates"), "{err}");
}

/// The acceptance criterion of the whole exercise: the real workspace —
/// every crate, after the DetSet/DetMap conversions and the documented
/// waivers — audits clean. A regression that reintroduces a HashMap into
/// sim logic fails this test (and the CI `cargo run -p peas-lint` gate)
/// immediately.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = run_lint(root).expect("workspace readable");
    assert!(
        report.diagnostics.is_empty(),
        "workspace must audit clean, got {:#?}",
        report.diagnostics
    );
    assert!(report.files_scanned > 50, "walker saw the whole workspace");
    assert!(
        report.waived >= 10,
        "the documented R1 waivers are in place"
    );
}
