//! Fixture: rule `r1-unchecked-panic` must fire on `unwrap`/`expect` in
//! sim-logic library code.

/// An event-loop-reachable path that dies on `None` instead of handling it.
pub fn head(values: &[u32]) -> u32 {
    *values.first().unwrap()
}
