//! Fixture: rule `r3-unchecked-cast` must fire on a bare narrowing `as`
//! cast in sim-logic code (and `model` is in scope).

/// Silently wraps once `values` outgrows the u32 id space.
pub fn checked_len(values: &[u64]) -> u32 {
    values.len() as u32
}
