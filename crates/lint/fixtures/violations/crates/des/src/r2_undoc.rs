//! Fixture: rule `r2-undocumented-panic` must fire on a public function
//! that can panic without a `# Panics` doc section.

/// Splits the interval — but says nothing about rejecting empty ones.
pub fn midpoint(lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "empty interval");
    lo + (hi - lo) / 2
}
