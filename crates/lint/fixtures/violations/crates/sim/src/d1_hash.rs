//! Fixture: rule `d1-std-hash` must fire on std hash collections in a
//! sim-logic crate (this tree mimics `crates/sim/src/...`).

use std::collections::HashMap;

/// Nondeterministic bookkeeping that d1 must catch (twice: the import
/// above and the field below).
pub struct Seen {
    /// Iteration order of this map depends on the process hasher seed.
    pub by_node: HashMap<u32, u64>,
}
