//! Fixture: rule `d5-heap-event-queue` must fire on `BinaryHeap` in a
//! sim-logic crate (this tree mimics `crates/sim/src/...`).

use std::collections::BinaryHeap;

/// Ad-hoc event scheduling that d5 must catch (twice: the import above
/// and the field below). Real code must schedule through
/// `peas_des::EventQueue`.
pub struct Agenda {
    /// A heap's pop order is correct but its internals are not the
    /// audited, golden-pinned ladder path.
    pub pending: BinaryHeap<u64>,
}
