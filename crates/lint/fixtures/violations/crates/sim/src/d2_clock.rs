//! Fixture: rule `d2-wall-clock` must fire on wall-clock reads in
//! library code (bin frontends and the bench crate are exempt).

/// Returns a timestamp that differs every run — exactly what simulation
/// logic must never observe.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
