//! Fixture: rule `d3-ambient-entropy` must fire on OS-entropy draws.

/// Ambient entropy: two runs with the same seed would diverge here.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
