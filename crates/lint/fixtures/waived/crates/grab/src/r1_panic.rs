//! Fixture: a waived `r1-unchecked-panic` must NOT fire.

/// Unwrap backed by a stated invariant.
pub fn head(values: &[u32]) -> u32 {
    // peas-lint: allow(r1-unchecked-panic) -- fixture: caller guarantees non-empty by construction
    *values.first().unwrap()
}
