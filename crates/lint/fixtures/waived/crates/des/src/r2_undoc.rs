//! Fixture: a waived `r2-undocumented-panic` must NOT fire.

/// Splits the interval.
// peas-lint: allow(r2-undocumented-panic) -- fixture: assert is an internal sanity check being migrated to Result
pub fn midpoint(lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "empty interval");
    lo + (hi - lo) / 2
}
