//! Fixture: a waived `r3-unchecked-cast` must NOT fire.

/// Cast backed by a stated bound.
pub fn checked_len(values: &[u64]) -> u32 {
    // peas-lint: allow(r3-unchecked-cast) -- fixture: callers cap the slice below u32::MAX
    values.len() as u32
}
