//! Fixture: a waived `d2-wall-clock` read must NOT fire.

/// Waived wall-clock read (e.g. a deliberately real-time progress hook).
// peas-lint: allow(d2-wall-clock) -- fixture: progress reporting only, never fed back into sim logic
pub fn stamp() -> std::time::Instant {
    // peas-lint: allow(d2-wall-clock) -- fixture: progress reporting only, never fed back into sim logic
    std::time::Instant::now()
}
