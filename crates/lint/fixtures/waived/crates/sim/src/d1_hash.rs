//! Fixture: a waived `d1-std-hash` use must NOT fire (but counts as
//! waived in the summary).

// peas-lint: allow(d1-std-hash) -- fixture: pretend this map is never iterated and feeds no fingerprint
use std::collections::HashMap;

/// Nondeterministic map, explicitly waived at both sites.
pub struct Seen {
    /// Waived inline on the same line.
    pub by_node: HashMap<u32, u64>, // peas-lint: allow(d1-std-hash) -- fixture: same-line waiver form
}
