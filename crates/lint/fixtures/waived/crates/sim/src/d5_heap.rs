//! Fixture: a waived `d5-heap-event-queue` use must NOT fire (but counts
//! as waived in the summary).

// peas-lint: allow(d5-heap-event-queue) -- fixture: pretend this is the heap reference implementation
use std::collections::BinaryHeap;

/// Reference-only heap, explicitly waived at both sites.
pub struct Agenda {
    /// Waived inline on the same line.
    pub pending: BinaryHeap<u64>, // peas-lint: allow(d5-heap-event-queue) -- fixture: same-line waiver form
}
