//! Fixture: a waived `d3-ambient-entropy` draw must NOT fire.

/// Waived entropy draw (e.g. seeding an operator-facing demo, recorded
/// into the run header for replay).
pub fn roll() -> u64 {
    // peas-lint: allow(d3-ambient-entropy) -- fixture: seed is logged so the run stays replayable
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
