//! Adaptive Sleeping: the probing-rate adjustment rule (Equation 2).
//!
//! On hearing a REPLY carrying the working node's measurement λ̂ and the
//! desired aggregate rate λd, a probing node updates its own rate to
//! `λ_new = λ · λd / λ̂`. Summed over all sleeping neighbors this drives the
//! aggregate rate Λ toward λd (Section 2.2.1): Λ_new = Σλᵢ·λd/λ̂ ≈ λd.
//!
//! Two practical amendments from Section 4:
//! * a probing node with several working neighbors adjusts to the *largest*
//!   λ̂ it heard, i.e. the lowest resulting rate ("Probing nodes with more
//!   than one working neighbors");
//! * rates are clamped to configured bounds so one noisy measurement can't
//!   freeze a node (λ → 0) or turn it into a chatterbox (λ → ∞).

use crate::msg::Reply;
use crate::rate::RateMeasurement;

/// Applies Equation 2 with clamping: `λ_new = clamp(λ·λd/λ̂)`, where the
/// multiplicative change is first limited to `factor_bounds = (down, up)`.
///
/// # Panics
///
/// Panics if any argument is non-positive, the rate bounds are inverted,
/// or the factor bounds do not satisfy `0 < down <= 1 <= up`.
pub fn adjusted_rate(
    current: f64,
    desired: f64,
    measured: RateMeasurement,
    bounds: (f64, f64),
    factor_bounds: (f64, f64),
) -> f64 {
    assert!(current > 0.0 && desired > 0.0, "rates must be positive");
    let (down, up) = factor_bounds;
    assert!(
        down > 0.0 && down <= 1.0 && up >= 1.0,
        "factor bounds must satisfy 0 < down <= 1 <= up"
    );
    let (lo, hi) = bounds;
    assert!(lo > 0.0 && lo < hi, "invalid rate bounds");
    let factor = (desired / measured.per_second()).clamp(down, up);
    (current * factor).clamp(lo, hi)
}

/// Folds the REPLYs collected during one probing window into the node's new
/// rate: picks the largest λ̂ (the lowest resulting rate) and applies
/// Equation 2; keeps `current` when no REPLY carried a measurement yet.
///
/// A REPLY whose `desired_rate` is non-positive or non-finite is ignored
/// rather than fed into [`adjusted_rate`] (whose positivity assert it would
/// trip): a single corrupted or adversarial frame must not abort the run.
pub fn rate_from_replies<'a>(
    current: f64,
    bounds: (f64, f64),
    factor_bounds: (f64, f64),
    replies: impl IntoIterator<Item = &'a Reply>,
) -> f64 {
    let mut best: Option<(RateMeasurement, f64)> = None;
    for reply in replies {
        if !(reply.desired_rate.is_finite() && reply.desired_rate > 0.0) {
            continue;
        }
        if let Some(m) = reply.measured_rate {
            let better = match best {
                None => true,
                Some((b, _)) => m > b,
            };
            if better {
                best = Some((m, reply.desired_rate));
            }
        }
    }
    match best {
        Some((measurement, desired)) => {
            adjusted_rate(current, desired, measurement, bounds, factor_bounds)
        }
        None => current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peas_des::time::SimDuration;

    const BOUNDS: (f64, f64) = (1e-5, 10.0);
    const CAP: (f64, f64) = (1e-9, 1e9); // effectively uncapped for the algebraic tests

    fn reply(measured: Option<f64>, desired: f64) -> Reply {
        Reply {
            measured_rate: measured.map(RateMeasurement::new),
            desired_rate: desired,
            working_time: SimDuration::ZERO,
        }
    }

    #[test]
    fn equation_2_basic() {
        // λ = 0.1, λd = 0.02, λ̂ = 0.05 -> λ_new = 0.1 * 0.02 / 0.05 = 0.04.
        let m = RateMeasurement::new(0.05);
        let next = adjusted_rate(0.1, 0.02, m, BOUNDS, CAP);
        assert!((next - 0.04).abs() < 1e-12);
    }

    #[test]
    fn over_target_measurement_lowers_rate() {
        let m = RateMeasurement::new(0.08); // aggregate 4x the target
        assert!(adjusted_rate(0.1, 0.02, m, BOUNDS, CAP) < 0.1);
    }

    #[test]
    fn under_target_measurement_raises_rate() {
        let m = RateMeasurement::new(0.005); // aggregate below target
        assert!(adjusted_rate(0.1, 0.02, m, BOUNDS, CAP) > 0.1);
    }

    #[test]
    fn aggregate_converges_to_desired() {
        // n sleeping neighbors with arbitrary rates; after one exact
        // feedback round the aggregate equals λd (the Section 2.2.1
        // derivation).
        let rates = [0.08, 0.01, 0.2, 0.003, 0.05];
        let aggregate: f64 = rates.iter().sum();
        let m = RateMeasurement::new(aggregate);
        let new_aggregate: f64 = rates
            .iter()
            .map(|&l| adjusted_rate(l, 0.02, m, BOUNDS, CAP))
            .sum();
        assert!((new_aggregate - 0.02).abs() < 1e-12);
    }

    #[test]
    fn clamping_bounds_the_result() {
        let tiny = adjusted_rate(1e-4, 0.02, RateMeasurement::new(1000.0), BOUNDS, CAP);
        assert_eq!(tiny, BOUNDS.0);
        let huge = adjusted_rate(5.0, 0.02, RateMeasurement::new(1e-6), BOUNDS, CAP);
        assert_eq!(huge, BOUNDS.1);
    }

    #[test]
    fn multiple_replies_use_largest_measurement() {
        // λ̂ = 0.1 wins over 0.04: the lowest resulting rate (Section 4).
        let replies = [reply(Some(0.04), 0.02), reply(Some(0.1), 0.02)];
        let next = rate_from_replies(0.1, BOUNDS, CAP, replies.iter());
        assert!((next - 0.1 * 0.02 / 0.1).abs() < 1e-12);
    }

    #[test]
    fn replies_without_measurement_leave_rate_unchanged() {
        let replies = [reply(None, 0.02), reply(None, 0.02)];
        assert_eq!(rate_from_replies(0.07, BOUNDS, CAP, replies.iter()), 0.07);
        assert_eq!(rate_from_replies(0.07, BOUNDS, CAP, [].iter()), 0.07);
    }

    #[test]
    fn mixed_replies_ignore_unmeasured_ones() {
        let replies = [reply(None, 0.02), reply(Some(0.05), 0.02)];
        let next = rate_from_replies(0.1, BOUNDS, CAP, replies.iter());
        assert!((next - 0.04).abs() < 1e-12);
    }

    #[test]
    fn iterated_feedback_converges_from_above_and_below() {
        // Simulate repeated exact feedback rounds: n nodes, aggregate should
        // approach λd regardless of the starting point.
        for start in [1.0, 0.001] {
            let mut rates = vec![start; 10];
            for _ in 0..5 {
                let aggregate: f64 = rates.iter().sum();
                let m = RateMeasurement::new(aggregate);
                for r in &mut rates {
                    *r = adjusted_rate(*r, 0.02, m, BOUNDS, CAP);
                }
            }
            let aggregate: f64 = rates.iter().sum();
            assert!(
                (aggregate - 0.02).abs() < 1e-9,
                "aggregate {aggregate} from start {start}"
            );
        }
    }

    #[test]
    fn factor_bounds_limit_single_adjustment() {
        // λ̂ 100x over target would slash λ 100x; the down bound of 0.5
        // limits a single step to halving.
        let m = RateMeasurement::new(2.0);
        let next = adjusted_rate(0.1, 0.02, m, BOUNDS, (0.5, 8.0));
        assert!((next - 0.05).abs() < 1e-12);
        // Recovery may be faster: up to the 8x up bound.
        let m = RateMeasurement::new(0.0001);
        let next = adjusted_rate(0.1, 0.02, m, BOUNDS, (0.5, 8.0));
        assert!((next - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn rejects_nonpositive_current() {
        let _ = adjusted_rate(0.0, 0.02, RateMeasurement::new(0.1), BOUNDS, CAP);
    }

    #[test]
    fn invalid_desired_rates_are_ignored_not_fatal() {
        // Regression: a REPLY with a corrupted λd used to reach
        // `adjusted_rate` and trip its positivity assert, aborting the run.
        for bad in [0.0, -0.02, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let replies = [reply(Some(0.05), bad)];
            assert_eq!(rate_from_replies(0.1, BOUNDS, CAP, replies.iter()), 0.1);
        }
        // A valid REPLY alongside corrupted ones still adjusts the rate —
        // even when a corrupted frame carries the larger measurement.
        let replies = [
            reply(Some(0.9), f64::NAN),
            reply(Some(0.05), 0.02),
            reply(Some(0.8), -1.0),
        ];
        let next = rate_from_replies(0.1, BOUNDS, CAP, replies.iter());
        assert!((next - 0.04).abs() < 1e-12);
    }
}
