//! # peas — Probing Environment and Adaptive Sleeping
//!
//! A faithful implementation of **PEAS** (Ye, Zhong, Cheng, Lu, Zhang,
//! *"PEAS: A Robust Energy Conserving Protocol for Long-lived Sensor
//! Networks"*, ICDCS 2003): a distributed sleep-scheduling protocol that
//! keeps a necessary set of sensors working and puts the rest to sleep,
//! extending network lifetime linearly in the deployed population while
//! tolerating frequent unexpected node failures.
//!
//! ## The protocol in one paragraph
//!
//! Every node sleeps for an exponentially distributed time with rate λ
//! (its *probing rate*). On waking it broadcasts a PROBE within the probing
//! range `Rp`. Any working node in range answers with a REPLY carrying its
//! measurement λ̂ of the *aggregate* probing rate it perceives. Hearing a
//! REPLY, the prober adjusts `λ ← λ·λd/λ̂` — driving the aggregate toward the
//! application-chosen λd — and sleeps again; hearing nothing, it starts
//! working until it dies. No per-neighbor state is kept anywhere.
//!
//! ## Crate layout
//!
//! * [`config`] — [`PeasConfig`] with the paper's Section 5 defaults;
//! * [`msg`] — PROBE/REPLY payloads;
//! * [`rate`] — the `k`-PROBE aggregate-rate estimator (Equation 1);
//! * [`adaptive`] — the rate-adjustment rule (Equation 2) with the
//!   Section 4 largest-measurement amendment;
//! * [`node`] — the [`PeasNode`] state machine (Figure 1) including the
//!   Section 4 extensions: multi-PROBE loss compensation, the `Tw`
//!   turn-off rule, and fixed-transmission-power threshold filtering;
//! * [`stats`] — per-node counters feeding the paper's Figures 11/14.
//!
//! The state machine is I/O-free: it consumes [`Input`]s and returns
//! [`Action`]s. Any host that owns a clock, an RNG and a radio can run it —
//! the companion `peas-sim` crate provides the full wireless-network
//! simulator used to reproduce the paper's evaluation.
//!
//! ## Example
//!
//! ```
//! use peas::{Action, Input, Mode, PeasConfig, PeasNode, Timer};
//! use peas_des::rng::SimRng;
//! use peas_des::time::SimTime;
//! use peas_radio::NodeId;
//!
//! // A node with the paper's parameters: Rp = 3 m, λ0 = 0.1/s, λd = 0.02/s.
//! let mut node = PeasNode::new(NodeId(0), PeasConfig::paper());
//! let mut rng = SimRng::new(42);
//!
//! // Booting arms the first exponential sleep timer.
//! let actions = node.start(&mut rng);
//! assert!(matches!(actions[0], Action::Schedule { timer: Timer::Wake, .. }));
//!
//! // When the wake timer fires the node probes its neighborhood...
//! let now = SimTime::from_secs(30);
//! node.on_input(now, Input::WakeUp, &mut rng);
//! assert_eq!(node.mode(), Mode::Probing);
//!
//! // ...and, hearing no REPLY, takes over as a working node.
//! node.on_input(now + PeasConfig::paper().reply_window, Input::ReplyWindowClosed, &mut rng);
//! assert_eq!(node.mode(), Mode::Working);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod config;
pub mod msg;
pub mod node;
pub mod rate;
pub mod stats;

pub use config::{ConfigError, FixedPower, PeasConfig, PeasConfigBuilder};
pub use msg::{Message, Reply, CONTROL_FRAME_BYTES};
pub use node::{Action, Input, Mode, PeasNode, Timer};
pub use rate::{RateEstimator, RateMeasurement};
pub use stats::NodeStats;
