//! Per-node protocol counters.
//!
//! These feed Figures 11 and 14 (wakeup counts) and Table 1 (energy
//! overhead, combined with the radio ledger).

/// Counters a [`crate::node::PeasNode`] maintains about its own behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Times the node woke up to probe (one per sleep period that ended).
    pub wakeups: u64,
    /// PROBE frames transmitted (up to `probe_count` per wakeup).
    pub probes_sent: u64,
    /// REPLY frames transmitted while working.
    pub replies_sent: u64,
    /// PROBE frames heard (and accepted by the threshold filter).
    pub probes_heard: u64,
    /// REPLY frames heard during probing windows.
    pub replies_heard: u64,
    /// Completed aggregate-rate measurements.
    pub measurements: u64,
    /// Probing windows that ended with at least one REPLY (went back to
    /// sleep).
    pub window_with_reply: u64,
    /// Probing windows that ended silent (started working).
    pub window_silent: u64,
    /// Times the node gave up working because of the Section 4 turn-off
    /// rule.
    pub turnoffs: u64,
    /// REPLYs overheard while working (turn-off rule evaluations).
    pub replies_overheard: u64,
}

impl NodeStats {
    /// Accumulates another node's counters (for fleet totals).
    pub fn merge(&mut self, other: &NodeStats) {
        self.wakeups += other.wakeups;
        self.probes_sent += other.probes_sent;
        self.replies_sent += other.replies_sent;
        self.probes_heard += other.probes_heard;
        self.replies_heard += other.replies_heard;
        self.measurements += other.measurements;
        self.window_with_reply += other.window_with_reply;
        self.window_silent += other.window_silent;
        self.turnoffs += other.turnoffs;
        self.replies_overheard += other.replies_overheard;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let s = NodeStats::default();
        assert_eq!(s.wakeups, 0);
        assert_eq!(s.probes_sent, 0);
        assert_eq!(s.turnoffs, 0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = NodeStats {
            wakeups: 2,
            probes_sent: 6,
            ..NodeStats::default()
        };
        let b = NodeStats {
            wakeups: 3,
            replies_sent: 1,
            ..NodeStats::default()
        };
        a.merge(&b);
        assert_eq!(a.wakeups, 5);
        assert_eq!(a.probes_sent, 6);
        assert_eq!(a.replies_sent, 1);
    }
}
