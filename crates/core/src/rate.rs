//! Aggregate probing-rate measurement at working nodes (Equation 1).
//!
//! Because each sleeping neighbor's wakeups are exponentially distributed,
//! the PROBEs a working node hears form the superposition of Poisson
//! processes — itself Poisson with rate Λ = Σλᵢ (Equation 3). The working
//! node estimates Λ without per-neighbor state: it counts `k` PROBEs and
//! divides by the elapsed time, `λ̂ = k / (t − t₀)` (Equation 1). By the
//! central limit theorem, k ≥ 16 puts the estimate within 1% with 99%
//! confidence; the paper uses k = 32 (Section 2.2.1).

use peas_des::time::{SimDuration, SimTime};

/// A measured aggregate probing rate λ̂, wakeups per second.
///
/// Newtype so that measured rates can't be mixed up with per-node rates in
/// the adjustment formula.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct RateMeasurement(f64);

impl RateMeasurement {
    /// Wraps a measured rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn new(rate: f64) -> RateMeasurement {
        assert!(
            rate.is_finite() && rate > 0.0,
            "measured rate must be positive and finite, got {rate}"
        );
        RateMeasurement(rate)
    }

    /// The measured rate in wakeups/second.
    pub fn per_second(self) -> f64 {
        self.0
    }
}

impl std::fmt::Display for RateMeasurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}/s", self.0)
    }
}

/// The `k`-PROBE estimator a working node runs (Section 2.2, "Measuring
/// aggregate λ at a working node").
///
/// # Examples
///
/// ```
/// use peas::rate::RateEstimator;
/// use peas_des::time::SimTime;
///
/// let mut est = RateEstimator::new(2);
/// assert_eq!(est.on_probe(SimTime::from_secs(0)), None);  // arms t0
/// assert_eq!(est.on_probe(SimTime::from_secs(10)), None); // count = 1
/// let m = est.on_probe(SimTime::from_secs(20)).unwrap();  // count = 2 = k
/// assert!((m.per_second() - 0.1).abs() < 1e-12);          // 2 / 20 s
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RateEstimator {
    k: u32,
    /// Windows are also closed after this long even with fewer than `k`
    /// PROBEs (see [`RateEstimator::with_max_window`]).
    max_window: SimDuration,
    /// `None` until the first PROBE arms the window.
    window: Option<Window>,
    latest: Option<RateMeasurement>,
    completed: u64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
struct Window {
    t0: SimTime,
    count: u32,
}

impl RateEstimator {
    /// Creates an estimator that measures after every `k` PROBEs.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u32) -> RateEstimator {
        RateEstimator::with_max_window(k, SimDuration::MAX)
    }

    /// Creates an estimator whose windows also close after `max_window`,
    /// measuring over however many PROBEs arrived by then.
    ///
    /// The paper's procedure waits for exactly `k` PROBEs, which takes
    /// `k/Λ` seconds — fine at Λ ≈ λd (1600 s at k = 32), but once the
    /// aggregate rate falls, an unbounded window keeps averaging in
    /// ancient (boot-era) probes and reports a rate far above the current
    /// one, which Equation 2 then turns into ever-lower prober rates. A
    /// bounded window caps that memory: λ̂ tracks the current rate with at
    /// most `max_window` of lag. `peas-sim` uses `8/λd` (400 s at the
    /// paper's λd).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `max_window` is zero.
    pub fn with_max_window(k: u32, max_window: SimDuration) -> RateEstimator {
        assert!(k > 0, "measurement threshold k must be at least 1");
        assert!(!max_window.is_zero(), "max_window must be positive");
        RateEstimator {
            k,
            max_window,
            window: None,
            latest: None,
            completed: 0,
        }
    }

    /// Records a PROBE heard at `now`. Returns a fresh measurement when
    /// this PROBE is the `k`-th since the window opened.
    ///
    /// Exactly the paper's procedure: the first PROBE sets the counter to 0
    /// and `t₀ = now`; each later PROBE increments the counter; on reaching
    /// `k`, λ̂ = k / (now − t₀), then `t₀ = now` and the counter resets.
    pub fn on_probe(&mut self, now: SimTime) -> Option<RateMeasurement> {
        match &mut self.window {
            None => {
                self.window = Some(Window { t0: now, count: 0 });
                None
            }
            Some(w) => {
                w.count += 1;
                let elapsed_d = now.saturating_since(w.t0);
                if w.count < self.k && elapsed_d < self.max_window {
                    return None;
                }
                let elapsed = elapsed_d.as_secs_f64();
                // Degenerate case: k probes in the same instant (only
                // possible in zero-delay unit tests). Skip the measurement
                // and restart the window rather than produce λ̂ = ∞.
                let measurement = if elapsed > 0.0 {
                    Some(RateMeasurement::new(w.count as f64 / elapsed))
                } else {
                    None
                };
                w.t0 = now;
                w.count = 0;
                if let Some(m) = measurement {
                    self.latest = Some(m);
                    self.completed += 1;
                }
                measurement
            }
        }
    }

    /// The most recent completed measurement, if any.
    pub fn latest(&self) -> Option<RateMeasurement> {
        self.latest
    }

    /// The estimate a REPLY should carry *now* — the latest completed
    /// measurement capped by the open window's evidence.
    ///
    /// The paper leaves unspecified what a working node reports between
    /// measurements; taken literally, λ̂ stays frozen for `k/Λ` seconds
    /// (1600 s at k = 32, Λ = λd = 0.02/s). A stale-high boot measurement
    /// then slashes every prober repeatedly and the aggregate rate spirals
    /// far below λd. The cap repairs this: having counted `c ≥ 2` probes
    /// over the `e ≥ min_elapsed` seconds since the window opened, `c/e`
    /// estimates the *current* rate, so the reported value tracks reality
    /// as the window ages instead of freezing at the last completed
    /// measurement. Young or near-empty windows contribute nothing — a
    /// freshly promoted working node reports `None` rather than a wild
    /// small-sample estimate.
    pub fn current_estimate(
        &self,
        now: SimTime,
        min_elapsed: SimDuration,
    ) -> Option<RateMeasurement> {
        let cap = self.window.and_then(|w| {
            let elapsed = now.saturating_since(w.t0);
            if w.count >= 2 && elapsed >= min_elapsed && !elapsed.is_zero() {
                Some(w.count as f64 / elapsed.as_secs_f64())
            } else {
                None
            }
        });
        match (self.latest, cap) {
            (Some(m), Some(c)) => Some(RateMeasurement::new(m.per_second().min(c))),
            (Some(m), None) => Some(m),
            (None, Some(c)) => Some(RateMeasurement::new(c)),
            (None, None) => None,
        }
    }

    /// The threshold `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of completed measurements.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// PROBEs counted in the currently open window.
    pub fn pending_count(&self) -> u32 {
        self.window.map_or(0, |w| w.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn first_probe_arms_without_measuring() {
        let mut est = RateEstimator::new(32);
        assert_eq!(est.on_probe(t(5.0)), None);
        assert_eq!(est.pending_count(), 0);
        assert_eq!(est.latest(), None);
    }

    #[test]
    fn measures_after_k_probes() {
        // k = 4, probes every 2 s after arming: measurement at the 5th
        // probe overall, λ̂ = 4 / 8 s = 0.5.
        let mut est = RateEstimator::new(4);
        assert_eq!(est.on_probe(t(0.0)), None);
        for i in 1..4 {
            assert_eq!(est.on_probe(t(2.0 * i as f64)), None);
        }
        let m = est.on_probe(t(8.0)).unwrap();
        assert!((m.per_second() - 0.5).abs() < 1e-12);
        assert_eq!(est.completed(), 1);
    }

    #[test]
    fn window_restarts_after_measurement() {
        let mut est = RateEstimator::new(2);
        est.on_probe(t(0.0));
        est.on_probe(t(1.0));
        let first = est.on_probe(t(2.0)).unwrap();
        assert!((first.per_second() - 1.0).abs() < 1e-12);
        // Next window: probes at 4 and 12 -> 2 / 10 s = 0.2.
        assert_eq!(est.on_probe(t(4.0)), None);
        let second = est.on_probe(t(12.0)).unwrap();
        assert!((second.per_second() - 0.2).abs() < 1e-12);
        assert_eq!(est.latest(), Some(second));
        assert_eq!(est.completed(), 2);
    }

    #[test]
    fn latest_persists_between_windows() {
        let mut est = RateEstimator::new(2);
        est.on_probe(t(0.0));
        est.on_probe(t(5.0));
        let m = est.on_probe(t(10.0)).unwrap();
        est.on_probe(t(11.0)); // mid-window
        assert_eq!(est.latest(), Some(m));
    }

    #[test]
    fn simultaneous_probes_do_not_divide_by_zero() {
        let mut est = RateEstimator::new(1);
        est.on_probe(t(3.0));
        // Second probe at the exact same instant: skipped, no measurement.
        assert_eq!(est.on_probe(t(3.0)), None);
        assert_eq!(est.latest(), None);
        // A later probe measures over the restarted window.
        let m = est.on_probe(t(5.0)).unwrap();
        assert!((m.per_second() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn estimator_tracks_poisson_rate_accurately() {
        // Feed a synthetic Poisson process of rate 0.02/s (the paper's λd)
        // and verify the k = 32 estimates cluster within a few percent.
        use peas_des::rng::SimRng;
        let mut rng = SimRng::new(21);
        let mut est = RateEstimator::new(32);
        let mut now = 0.0;
        let mut estimates = Vec::new();
        for _ in 0..20_000 {
            now += rng.exp_secs(0.02);
            if let Some(m) = est.on_probe(SimTime::from_secs_f64(now)) {
                estimates.push(m.per_second());
            }
        }
        assert!(estimates.len() > 500);
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        // k/T over a Gamma(k, λ) window has mean k·λ/(k−1): a small upward
        // bias of 1/(k−1) ≈ 3.2% at k = 32, shrinking as k grows — part of
        // why the paper prefers k = 32 over the CLT minimum of 16.
        let expected = 32.0 * 0.02 / 31.0;
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "mean estimate {mean} vs theoretical {expected}"
        );
    }

    #[test]
    fn window_times_out_with_partial_count() {
        // k = 32 but max_window = 100 s: the probe arriving after the
        // window aged out closes it with whatever count accumulated.
        let mut est = RateEstimator::with_max_window(32, SimDuration::from_secs(100));
        est.on_probe(t(0.0)); // arms
        est.on_probe(t(40.0)); // count 1
        est.on_probe(t(80.0)); // count 2
        let m = est.on_probe(t(120.0)).expect("window timed out");
        // 3 probes over 120 s.
        assert!((m.per_second() - 3.0 / 120.0).abs() < 1e-12);
        assert_eq!(est.pending_count(), 0);
    }

    #[test]
    fn current_estimate_caps_stale_measurements() {
        let mut est = RateEstimator::with_max_window(2, SimDuration::MAX);
        // Complete a measurement at a high rate: 2 probes / 2 s = 1.0/s.
        est.on_probe(t(0.0));
        est.on_probe(t(1.0));
        est.on_probe(t(2.0));
        assert!((est.latest().unwrap().per_second() - 1.0).abs() < 1e-12);
        // Then the stream dries up; two stragglers over 400 s.
        est.on_probe(t(200.0));
        est.on_probe(t(400.0));
        let min_elapsed = SimDuration::from_secs(50);
        let reported = est.current_estimate(t(400.0), min_elapsed).unwrap();
        // The open window (2 probes over 398 s) caps the stale 1.0/s.
        assert!(
            reported.per_second() < 0.01,
            "stale estimate not capped: {reported}"
        );
    }

    #[test]
    fn current_estimate_requires_evidence() {
        let est = RateEstimator::new(32);
        let min_elapsed = SimDuration::from_secs(50);
        // No probes at all: nothing to report.
        assert_eq!(est.current_estimate(t(100.0), min_elapsed), None);
        let mut est = RateEstimator::new(32);
        est.on_probe(t(0.0)); // arms only (count 0)
        assert_eq!(est.current_estimate(t(100.0), min_elapsed), None);
        est.on_probe(t(10.0)); // count 1: still below the 2-probe floor
        assert_eq!(est.current_estimate(t(100.0), min_elapsed), None);
        est.on_probe(t(20.0)); // count 2 and window old enough
        let m = est.current_estimate(t(100.0), min_elapsed).unwrap();
        assert!((m.per_second() - 0.02).abs() < 1e-12);
        // A too-young window reports nothing even with 2 probes.
        assert_eq!(est.current_estimate(t(30.0), min_elapsed), None);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = RateEstimator::new(0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn measurement_rejects_zero() {
        let _ = RateMeasurement::new(0.0);
    }

    #[test]
    fn measurement_display() {
        assert_eq!(RateMeasurement::new(0.02).to_string(), "0.020000/s");
    }
}
