//! The PEAS node state machine (Figure 1).
//!
//! A node is `Sleeping`, `Probing` or `Working` (plus `Dead`). The state
//! machine is *I/O-free*: it consumes [`Input`]s (timer firings and received
//! frames) and emits [`Action`]s (timers to arm, frames to broadcast). The
//! host — `peas-sim`'s world, or a unit test — owns the event loop, the
//! radio and the battery. This keeps the protocol testable in isolation and
//! mirrors how it would sit above a real MAC.
//!
//! State transitions (Section 2.1):
//!
//! * `Sleeping` —wake timer→ `Probing`: broadcast PROBE(s) within `Rp`,
//!   listen for the reply window;
//! * `Probing` —heard REPLY→ `Sleeping`: adjust λ per Adaptive Sleeping and
//!   draw a new exponential sleep;
//! * `Probing` —window silent→ `Working`: work until death;
//! * `Working` —overheard REPLY with larger `Tw` (Section 4)→ `Sleeping`.

use peas_des::rng::SimRng;
use peas_des::time::{SimDuration, SimTime};
use peas_radio::{NodeId, RxInfo};

use crate::adaptive::rate_from_replies;
use crate::config::PeasConfig;
use crate::msg::{Message, Reply};
use crate::rate::RateEstimator;
use crate::stats::NodeStats;

/// The node's operation mode (Figure 1, plus `Dead`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Radio off, waiting for the wake timer.
    Sleeping,
    /// Awake, probing the neighborhood and collecting REPLYs.
    Probing,
    /// Sensing/communicating until failure or energy depletion.
    Working,
    /// Failed or out of energy; never returns.
    Dead,
}

impl Mode {
    /// Whether the radio is powered (can hear frames).
    pub fn is_awake(self) -> bool {
        matches!(self, Mode::Probing | Mode::Working)
    }
}

/// Timers the node asks its host to arm. At most one timer of each kind is
/// outstanding per node, except `ProbeSend` (one per remaining PROBE).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Timer {
    /// End of the current sleep period.
    Wake,
    /// Transmit one PROBE.
    ProbeSend,
    /// Close the REPLY-collection window.
    ReplyWindow,
    /// Send the pending REPLY (random backoff elapsed).
    ReplyBackoff,
}

/// An event delivered to the node by its host.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Input {
    /// The [`Timer::Wake`] timer fired.
    WakeUp,
    /// A [`Timer::ProbeSend`] timer fired.
    ProbeSendTimer,
    /// The [`Timer::ReplyWindow`] timer fired.
    ReplyWindowClosed,
    /// The [`Timer::ReplyBackoff`] timer fired.
    ReplyBackoff,
    /// A frame arrived intact while the node was awake.
    Frame {
        /// The transmitting node.
        from: NodeId,
        /// The decoded message.
        msg: Message,
        /// Link-quality information for threshold filtering.
        info: RxInfo,
    },
}

/// A side effect the host must perform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// Arm `timer` to fire `after` from now.
    Schedule {
        /// Which timer to arm.
        timer: Timer,
        /// Delay from the current instant.
        after: SimDuration,
    },
    /// Disarm an outstanding timer (a no-op if it is not pending).
    Cancel(Timer),
    /// Broadcast `msg` with transmission power covering `range` meters.
    Broadcast {
        /// The control message to send.
        msg: Message,
        /// Intended transmission range in meters.
        range: f64,
    },
}

/// One sensor running PEAS.
///
/// # Examples
///
/// Drive a node through a silent probe round — it must start working:
///
/// ```
/// use peas::{Action, Input, Mode, PeasConfig, PeasNode, Timer};
/// use peas_des::rng::SimRng;
/// use peas_des::time::SimTime;
/// use peas_radio::NodeId;
///
/// let mut node = PeasNode::new(NodeId(0), PeasConfig::paper());
/// let mut rng = SimRng::new(1);
/// let actions = node.start(&mut rng);
/// assert!(matches!(actions[0], Action::Schedule { timer: Timer::Wake, .. }));
///
/// let t0 = SimTime::from_secs(5);
/// node.on_input(t0, Input::WakeUp, &mut rng);
/// assert_eq!(node.mode(), Mode::Probing);
///
/// // No REPLY arrives; the window closes and the node starts working.
/// let t1 = t0 + PeasConfig::paper().reply_window;
/// node.on_input(t1, Input::ReplyWindowClosed, &mut rng);
/// assert_eq!(node.mode(), Mode::Working);
/// ```
#[derive(Clone, Debug)]
pub struct PeasNode {
    id: NodeId,
    config: PeasConfig,
    mode: Mode,
    /// Current per-node probing rate λ.
    rate: f64,
    estimator: RateEstimator,
    work_started: Option<SimTime>,
    /// REPLYs collected during the open probing window.
    window_replies: Vec<Reply>,
    /// Whether a REPLY backoff timer is outstanding.
    reply_pending: bool,
    stats: NodeStats,
}

impl PeasNode {
    /// Creates node `id` in the `Sleeping` mode with λ = λ₀.
    ///
    /// The identity only matters for the Section 4 turn-off rule's
    /// tie-break (see [`PeasConfig::turnoff_tie_epsilon`]).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`PeasConfig::validate`]).
    pub fn new(id: NodeId, config: PeasConfig) -> PeasNode {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        let estimator =
            RateEstimator::with_max_window(config.measure_threshold, config.measure_window_max);
        let rate = config.initial_rate;
        PeasNode {
            id,
            config,
            mode: Mode::Sleeping,
            rate,
            estimator,
            work_started: None,
            window_replies: Vec::new(),
            reply_pending: false,
            stats: NodeStats::default(),
        }
    }

    /// Boots the node: draws the first exponential sleep and asks the host
    /// to arm the wake timer.
    pub fn start(&mut self, rng: &mut SimRng) -> Vec<Action> {
        debug_assert_eq!(self.mode, Mode::Sleeping, "start() on a started node");
        vec![Action::Schedule {
            timer: Timer::Wake,
            after: rng.exp_duration(self.rate),
        }]
    }

    /// Feeds one input; returns the side effects to perform.
    ///
    /// Stale timer firings (e.g. a `ReplyBackoff` arriving after the node
    /// was turned off) are ignored, so hosts need not cancel precisely.
    pub fn on_input(&mut self, now: SimTime, input: Input, rng: &mut SimRng) -> Vec<Action> {
        if self.mode == Mode::Dead {
            return Vec::new();
        }
        match input {
            Input::WakeUp => self.on_wake(rng),
            Input::ProbeSendTimer => self.on_probe_send(),
            Input::ReplyWindowClosed => self.on_window_closed(now, rng),
            Input::ReplyBackoff => self.on_reply_backoff(now),
            Input::Frame { from, msg, info } => self.on_frame(now, from, msg, info, rng),
        }
    }

    /// Marks the node dead (failure injection or battery depletion).
    /// Returns cancellations for any timers that may be outstanding.
    pub fn kill(&mut self) -> Vec<Action> {
        self.mode = Mode::Dead;
        self.reply_pending = false;
        self.window_replies.clear();
        vec![
            Action::Cancel(Timer::Wake),
            Action::Cancel(Timer::ProbeSend),
            Action::Cancel(Timer::ReplyWindow),
            Action::Cancel(Timer::ReplyBackoff),
        ]
    }

    fn on_wake(&mut self, rng: &mut SimRng) -> Vec<Action> {
        if self.mode != Mode::Sleeping {
            return Vec::new(); // stale wake timer
        }
        self.mode = Mode::Probing;
        self.stats.wakeups += 1;
        self.window_replies.clear();
        let mut actions = Vec::with_capacity(self.config.probe_count as usize + 1);
        for _ in 0..self.config.probe_count {
            actions.push(Action::Schedule {
                timer: Timer::ProbeSend,
                after: rng.range_duration(SimDuration::ZERO, self.config.probe_spread),
            });
        }
        actions.push(Action::Schedule {
            timer: Timer::ReplyWindow,
            after: self.config.reply_window,
        });
        actions
    }

    fn on_probe_send(&mut self) -> Vec<Action> {
        if self.mode != Mode::Probing {
            return Vec::new(); // stale probe timer
        }
        self.stats.probes_sent += 1;
        vec![Action::Broadcast {
            msg: Message::Probe,
            range: self.config.control_tx_range(),
        }]
    }

    fn on_window_closed(&mut self, _now: SimTime, rng: &mut SimRng) -> Vec<Action> {
        if self.mode != Mode::Probing {
            return Vec::new();
        }
        if self.window_replies.is_empty() {
            // No working node within Rp: take over (Figure 1, "no REPLY
            // for the PROBE").
            self.stats.window_silent += 1;
            self.mode = Mode::Working;
            self.work_started = Some(_now);
            self.estimator = RateEstimator::with_max_window(
                self.config.measure_threshold,
                self.config.measure_window_max,
            );
            self.reply_pending = false;
            Vec::new()
        } else {
            // Working neighbor(s) exist: adapt λ and sleep again.
            self.stats.window_with_reply += 1;
            self.rate = rate_from_replies(
                self.rate,
                self.config.rate_bounds,
                self.config.adjust_factor_bounds,
                self.window_replies.iter(),
            );
            self.window_replies.clear();
            self.mode = Mode::Sleeping;
            vec![Action::Schedule {
                timer: Timer::Wake,
                after: rng.exp_duration(self.rate),
            }]
        }
    }

    fn on_reply_backoff(&mut self, now: SimTime) -> Vec<Action> {
        if self.mode != Mode::Working || !self.reply_pending {
            return Vec::new(); // turned off (or killed) since scheduling
        }
        self.reply_pending = false;
        self.stats.replies_sent += 1;
        // Report a freshness-capped estimate (see RateEstimator docs); the
        // minimum window age is one expected inter-probe interval at λd.
        let min_elapsed = SimDuration::from_secs_f64(1.0 / self.config.desired_rate);
        vec![Action::Broadcast {
            msg: Message::Reply(Reply {
                measured_rate: self.estimator.current_estimate(now, min_elapsed),
                desired_rate: self.config.desired_rate,
                working_time: self.working_time(now).unwrap_or(SimDuration::ZERO),
            }),
            range: self.config.control_tx_range(),
        }]
    }

    fn on_frame(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: Message,
        info: RxInfo,
        rng: &mut SimRng,
    ) -> Vec<Action> {
        // Fixed-power threshold rule (Section 4): only frames that appear to
        // originate within the probing range count.
        if self.config.fixed_power.is_some() && !info.stronger_than_range(self.config.probing_range)
        {
            return Vec::new();
        }
        match (self.mode, msg) {
            (Mode::Working, Message::Probe) => {
                self.stats.probes_heard += 1;
                if self.reply_pending {
                    // Same probing burst (Section 4 sends up to three PROBE
                    // frames per wakeup): the pending REPLY serves it, and
                    // the estimator must not double-count the event — λ̂
                    // measures wakeups, not frames, or Equation 2 would
                    // regulate the aggregate to λd divided by the probe
                    // count.
                    Vec::new()
                } else {
                    if self.estimator.on_probe(now).is_some() {
                        self.stats.measurements += 1;
                    }
                    self.reply_pending = true;
                    // Delay past the prober's multi-PROBE burst so the
                    // half-duplex prober is listening when the REPLY lands.
                    let after = self.config.reply_backoff_base
                        + rng.range_duration(SimDuration::ZERO, self.config.reply_backoff_max);
                    vec![Action::Schedule {
                        timer: Timer::ReplyBackoff,
                        after,
                    }]
                }
            }
            (Mode::Working, Message::Reply(reply)) => {
                self.on_overheard_reply(now, from, reply, rng)
            }
            (Mode::Probing, Message::Reply(reply)) => {
                self.stats.replies_heard += 1;
                self.window_replies.push(reply);
                Vec::new()
            }
            // A probing node ignores other nodes' PROBEs; sleeping nodes
            // never reach here (hosts don't deliver to a powered-off radio),
            // but stay safe if they do.
            _ => Vec::new(),
        }
    }

    /// Section 4 turn-off rule: two working nodes that hear each other's
    /// REPLYs are within `Rp`; the one that has worked for a *shorter* time
    /// yields, keeping the topology stable. `Tw` values within the
    /// configured tolerance are ties, broken by node id (the higher id
    /// yields) — without this, near-simultaneous starters would each see
    /// their own `Tw` as larger (REPLY latency) and neither would ever
    /// yield.
    fn on_overheard_reply(
        &mut self,
        now: SimTime,
        from: NodeId,
        reply: Reply,
        rng: &mut SimRng,
    ) -> Vec<Action> {
        self.stats.replies_overheard += 1;
        if !self.config.turnoff_enabled {
            return Vec::new();
        }
        let my_tw = self.working_time(now).unwrap_or(SimDuration::ZERO);
        let eps = self.config.turnoff_tie_epsilon;
        let diff = if my_tw >= reply.working_time {
            my_tw - reply.working_time
        } else {
            reply.working_time - my_tw
        };
        let i_yield = if diff <= eps {
            // The `model-bug-inverted-tiebreak` feature flips the tie to
            // "lower id yields" as a planted regression for the
            // `peas-model` checker; see that crate's bug harness.
            #[cfg(not(feature = "model-bug-inverted-tiebreak"))]
            {
                self.id.0 > from.0
            }
            #[cfg(feature = "model-bug-inverted-tiebreak")]
            {
                self.id.0 < from.0
            }
        } else {
            my_tw < reply.working_time
        };
        if std::env::var("PEAS_TRACE_TURNOFF").is_ok() {
            eprintln!(
                "TURNOFF-EVAL me={} from={} my_tw={:.3} sender_tw={:.3} yield={}",
                self.id.0,
                from.0,
                my_tw.as_secs_f64(),
                reply.working_time.as_secs_f64(),
                i_yield
            );
        }
        if !i_yield {
            return Vec::new(); // the sender is newer; it should yield, not us
        }
        self.stats.turnoffs += 1;
        self.mode = Mode::Sleeping;
        self.work_started = None;
        let mut actions = Vec::new();
        if self.reply_pending {
            self.reply_pending = false;
            actions.push(Action::Cancel(Timer::ReplyBackoff));
        }
        actions.push(Action::Schedule {
            timer: Timer::Wake,
            after: rng.exp_duration(self.rate),
        });
        actions
    }

    /// The current operation mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The node's current probing rate λ (wakeups/second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The protocol configuration.
    pub fn config(&self) -> &PeasConfig {
        &self.config
    }

    /// How long the node has been working (`Tw`), if it is working.
    pub fn working_time(&self, now: SimTime) -> Option<SimDuration> {
        self.work_started.map(|t| now.saturating_since(t))
    }

    /// The node's counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// The working node's aggregate-rate estimator (for inspection).
    pub fn estimator(&self) -> &RateEstimator {
        &self.estimator
    }

    /// Whether a REPLY backoff is outstanding (a PROBE was heard and the
    /// answer has not been transmitted yet). Only ever true while
    /// `Working`. Exposed for host-side invariant checking (`peas-model`).
    pub fn reply_pending(&self) -> bool {
        self.reply_pending
    }

    /// The REPLYs collected in the currently open probing window.
    /// Empty outside `Probing`. Exposed for host-side invariant checking.
    pub fn window_replies(&self) -> &[Reply] {
        &self.window_replies
    }

    /// The instant the node last entered `Working`, if it is working.
    /// Exposed for host-side invariant checking (`peas-model` needs the
    /// absolute start, not the `Tw` delta, to canonicalize states).
    pub fn work_started(&self) -> Option<SimTime> {
        self.work_started
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::RateMeasurement;

    const RP: f64 = 3.0;

    fn close_info() -> RxInfo {
        RxInfo {
            distance: 2.0,
            effective_distance: 2.0,
        }
    }

    fn reply_msg(measured: Option<f64>, tw_secs: u64) -> Message {
        Message::Reply(Reply {
            measured_rate: measured.map(RateMeasurement::new),
            desired_rate: 0.02,
            working_time: SimDuration::from_secs(tw_secs),
        })
    }

    fn frame(msg: Message) -> Input {
        Input::Frame {
            from: NodeId(99),
            msg,
            info: close_info(),
        }
    }

    fn booted_node(rng: &mut SimRng) -> PeasNode {
        let mut n = PeasNode::new(NodeId(0), PeasConfig::paper());
        n.start(rng);
        n
    }

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn boot_schedules_exponential_wake() {
        let mut rng = SimRng::new(1);
        let mut n = PeasNode::new(NodeId(0), PeasConfig::paper());
        let actions = n.start(&mut rng);
        assert_eq!(actions.len(), 1);
        match actions[0] {
            Action::Schedule {
                timer: Timer::Wake,
                after,
            } => assert!(after > SimDuration::ZERO),
            ref other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(n.mode(), Mode::Sleeping);
        assert_eq!(n.rate(), 0.1);
    }

    #[test]
    fn wake_enters_probing_and_schedules_probes_and_window() {
        let mut rng = SimRng::new(2);
        let mut n = booted_node(&mut rng);
        let actions = n.on_input(t(10.0), Input::WakeUp, &mut rng);
        assert_eq!(n.mode(), Mode::Probing);
        assert_eq!(n.stats().wakeups, 1);
        let probe_timers = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Schedule {
                        timer: Timer::ProbeSend,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(probe_timers, 3, "paper sends three PROBEs");
        let window = actions
            .iter()
            .find(|a| {
                matches!(
                    a,
                    Action::Schedule {
                        timer: Timer::ReplyWindow,
                        ..
                    }
                )
            })
            .expect("reply window scheduled");
        match window {
            Action::Schedule { after, .. } => {
                assert_eq!(*after, SimDuration::from_millis(150));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn probe_timer_broadcasts_probe_at_probing_range() {
        let mut rng = SimRng::new(3);
        let mut n = booted_node(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        let actions = n.on_input(t(10.01), Input::ProbeSendTimer, &mut rng);
        assert_eq!(
            actions,
            vec![Action::Broadcast {
                msg: Message::Probe,
                range: RP,
            }]
        );
        assert_eq!(n.stats().probes_sent, 1);
    }

    #[test]
    fn silent_window_starts_working() {
        let mut rng = SimRng::new(4);
        let mut n = booted_node(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        let actions = n.on_input(t(10.1), Input::ReplyWindowClosed, &mut rng);
        assert!(actions.is_empty());
        assert_eq!(n.mode(), Mode::Working);
        assert_eq!(n.stats().window_silent, 1);
        assert_eq!(
            n.working_time(t(15.1)),
            Some(SimDuration::from_secs_f64(5.0))
        );
    }

    #[test]
    fn reply_sends_node_back_to_sleep_with_adjusted_rate() {
        let mut rng = SimRng::new(5);
        let mut n = booted_node(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        // REPLY with λ̂ = 0.05: Equation 2 gives 0.1·0.02/0.05 = 0.04, but
        // the down-factor bound (halve at most per step) clamps to 0.05.
        n.on_input(t(10.05), frame(reply_msg(Some(0.05), 100)), &mut rng);
        let actions = n.on_input(t(10.1), Input::ReplyWindowClosed, &mut rng);
        assert_eq!(n.mode(), Mode::Sleeping);
        assert!((n.rate() - 0.05).abs() < 1e-12);
        assert_eq!(n.stats().window_with_reply, 1);
        assert!(matches!(
            actions[0],
            Action::Schedule {
                timer: Timer::Wake,
                ..
            }
        ));
    }

    #[test]
    fn multiple_replies_pick_largest_measurement() {
        let mut rng = SimRng::new(6);
        let mut n = booted_node(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        n.on_input(t(10.02), frame(reply_msg(Some(0.04), 50)), &mut rng);
        n.on_input(t(10.05), frame(reply_msg(Some(0.10), 60)), &mut rng);
        n.on_input(t(10.1), Input::ReplyWindowClosed, &mut rng);
        // Largest λ̂ = 0.10 wins (lowest resulting rate); Equation 2 gives
        // 0.1·0.02/0.10 = 0.02 but the halve-at-most bound clamps to 0.05.
        assert!((n.rate() - 0.05).abs() < 1e-12);
        assert_eq!(n.stats().replies_heard, 2);
    }

    #[test]
    fn reply_without_measurement_keeps_rate() {
        let mut rng = SimRng::new(7);
        let mut n = booted_node(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        n.on_input(t(10.05), frame(reply_msg(None, 50)), &mut rng);
        n.on_input(t(10.1), Input::ReplyWindowClosed, &mut rng);
        assert_eq!(n.mode(), Mode::Sleeping);
        assert_eq!(n.rate(), 0.1);
    }

    #[test]
    fn working_node_replies_to_probe_after_backoff() {
        let mut rng = SimRng::new(8);
        let mut n = booted_node(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        n.on_input(t(10.1), Input::ReplyWindowClosed, &mut rng); // now working
        let actions = n.on_input(t(20.0), frame(Message::Probe), &mut rng);
        assert!(matches!(
            actions[0],
            Action::Schedule {
                timer: Timer::ReplyBackoff,
                ..
            }
        ));
        let actions = n.on_input(t(20.02), Input::ReplyBackoff, &mut rng);
        match &actions[0] {
            Action::Broadcast {
                msg: Message::Reply(reply),
                range,
            } => {
                assert_eq!(*range, RP);
                assert_eq!(reply.desired_rate, 0.02);
                assert_eq!(reply.measured_rate, None, "no measurement after 1 probe");
                assert!(
                    (reply.working_time.as_secs_f64() - 9.92).abs() < 1e-9,
                    "Tw should be now - work start"
                );
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(n.stats().replies_sent, 1);
    }

    #[test]
    fn second_probe_during_backoff_does_not_double_schedule() {
        let mut rng = SimRng::new(9);
        let mut n = booted_node(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        n.on_input(t(10.1), Input::ReplyWindowClosed, &mut rng);
        let first = n.on_input(t(20.0), frame(Message::Probe), &mut rng);
        assert_eq!(first.len(), 1);
        let second = n.on_input(t(20.001), frame(Message::Probe), &mut rng);
        assert!(second.is_empty(), "pending REPLY covers the second probe");
        assert_eq!(n.stats().probes_heard, 2);
    }

    #[test]
    fn estimator_measures_after_k_probes() {
        let mut rng = SimRng::new(10);
        let config = PeasConfig::builder().measure_threshold(3).build();
        let mut n = PeasNode::new(NodeId(0), config);
        n.start(&mut rng);
        n.on_input(t(0.0), Input::WakeUp, &mut rng);
        n.on_input(t(0.1), Input::ReplyWindowClosed, &mut rng);
        // Arm + 3 probes at 10 s spacing: measurement 3/30 = 0.1.
        for (i, probe_t) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            n.on_input(t(*probe_t), frame(Message::Probe), &mut rng);
            // Drain the reply backoff so reply_pending doesn't block stats.
            n.on_input(t(*probe_t + 0.05), Input::ReplyBackoff, &mut rng);
            if i < 3 {
                assert_eq!(n.stats().measurements, 0);
            }
        }
        assert_eq!(n.stats().measurements, 1);
        let m = n.estimator().latest().unwrap();
        assert!((m.per_second() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn turnoff_rule_newer_worker_yields() {
        let mut rng = SimRng::new(11);
        let mut n = booted_node(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        n.on_input(t(10.1), Input::ReplyWindowClosed, &mut rng); // working since 10.1
                                                                 // Overhear a REPLY from a node that has worked 100 s; we worked ~5 s.
        let actions = n.on_input(t(15.0), frame(reply_msg(None, 100)), &mut rng);
        assert_eq!(n.mode(), Mode::Sleeping);
        assert_eq!(n.stats().turnoffs, 1);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Schedule {
                timer: Timer::Wake,
                ..
            }
        )));
    }

    #[test]
    fn turnoff_rule_older_worker_stays() {
        let mut rng = SimRng::new(12);
        let mut n = booted_node(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        n.on_input(t(10.1), Input::ReplyWindowClosed, &mut rng);
        // We have worked 500 s; the overheard node only 2 s.
        let actions = n.on_input(t(510.1), frame(reply_msg(None, 2)), &mut rng);
        assert!(actions.is_empty());
        assert_eq!(n.mode(), Mode::Working);
        assert_eq!(n.stats().turnoffs, 0);
    }

    #[test]
    fn turnoff_cancels_pending_reply() {
        let mut rng = SimRng::new(13);
        let mut n = booted_node(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        n.on_input(t(10.1), Input::ReplyWindowClosed, &mut rng);
        n.on_input(t(20.0), frame(Message::Probe), &mut rng); // backoff pending
        let actions = n.on_input(t(20.01), frame(reply_msg(None, 9_999)), &mut rng);
        assert!(actions.contains(&Action::Cancel(Timer::ReplyBackoff)));
        // A stale backoff firing later must not transmit.
        let stale = n.on_input(t(20.05), Input::ReplyBackoff, &mut rng);
        assert!(stale.is_empty());
        assert_eq!(n.stats().replies_sent, 0);
    }

    #[test]
    fn turnoff_tie_breaks_by_node_id() {
        // Two nodes started working at (nearly) the same instant: Tw values
        // within the tie epsilon. The higher id yields; the lower id stays.
        let run = |my_id: u32, from_id: u32| {
            let mut rng = SimRng::new(42);
            let mut n = PeasNode::new(NodeId(my_id), PeasConfig::paper());
            n.start(&mut rng);
            n.on_input(t(10.0), Input::WakeUp, &mut rng);
            n.on_input(t(10.15), Input::ReplyWindowClosed, &mut rng); // working
                                                                      // Overhear a REPLY whose Tw matches ours to within ~200 ms.
            let my_tw_at_reception = 5.0;
            let input = Input::Frame {
                from: NodeId(from_id),
                msg: Message::Reply(Reply {
                    measured_rate: None,
                    desired_rate: 0.02,
                    working_time: SimDuration::from_secs_f64(my_tw_at_reception - 0.2),
                }),
                info: close_info(),
            };
            n.on_input(t(10.15 + my_tw_at_reception), input, &mut rng);
            n.mode()
        };
        assert_eq!(run(9, 2), Mode::Sleeping, "higher id must yield");
        assert_eq!(run(2, 9), Mode::Working, "lower id must stay");
    }

    #[test]
    fn turnoff_disabled_ignores_replies() {
        let mut rng = SimRng::new(14);
        let config = PeasConfig::builder().turnoff(false).build();
        let mut n = PeasNode::new(NodeId(0), config);
        n.start(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        n.on_input(t(10.1), Input::ReplyWindowClosed, &mut rng);
        n.on_input(t(15.0), frame(reply_msg(None, 100)), &mut rng);
        assert_eq!(n.mode(), Mode::Working);
    }

    #[test]
    fn fixed_power_filters_weak_frames() {
        let mut rng = SimRng::new(15);
        let config = PeasConfig::builder().fixed_power(10.0).build();
        let mut n = PeasNode::new(NodeId(0), config);
        n.start(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        n.on_input(t(10.1), Input::ReplyWindowClosed, &mut rng); // working
                                                                 // A PROBE from 8 m away: audible (within Rt) but filtered (> Rp).
        let weak = Input::Frame {
            from: NodeId(1),
            msg: Message::Probe,
            info: RxInfo {
                distance: 8.0,
                effective_distance: 8.0,
            },
        };
        let actions = n.on_input(t(20.0), weak, &mut rng);
        assert!(actions.is_empty());
        assert_eq!(n.stats().probes_heard, 0);
        // A close one passes and probes are answered at full power (Rt).
        let actions = n.on_input(t(21.0), frame(Message::Probe), &mut rng);
        assert_eq!(actions.len(), 1);
        n.on_input(t(21.01), Input::ReplyBackoff, &mut rng);
        assert_eq!(n.stats().probes_heard, 1);
    }

    #[test]
    fn fixed_power_prober_ignores_weak_replies() {
        // A REPLY arriving from beyond Rp (possible at full power) must not
        // put the prober back to sleep: the responder is too far to count
        // as a working neighbor.
        let mut rng = SimRng::new(35);
        let config = PeasConfig::builder().fixed_power(10.0).build();
        let mut n = PeasNode::new(NodeId(0), config);
        n.start(&mut rng);
        n.on_input(t(5.0), Input::WakeUp, &mut rng);
        let weak_reply = Input::Frame {
            from: NodeId(3),
            msg: reply_msg(Some(0.02), 100),
            info: RxInfo {
                distance: 7.0,
                effective_distance: 7.0,
            },
        };
        n.on_input(t(5.05), weak_reply, &mut rng);
        assert_eq!(n.stats().replies_heard, 0);
        n.on_input(t(5.15), Input::ReplyWindowClosed, &mut rng);
        assert_eq!(n.mode(), Mode::Working, "weak reply must not stop takeover");
    }

    #[test]
    fn fixed_power_probes_at_full_range() {
        let mut rng = SimRng::new(16);
        let config = PeasConfig::builder().fixed_power(10.0).build();
        let mut n = PeasNode::new(NodeId(0), config);
        n.start(&mut rng);
        n.on_input(t(1.0), Input::WakeUp, &mut rng);
        let actions = n.on_input(t(1.01), Input::ProbeSendTimer, &mut rng);
        assert_eq!(
            actions,
            vec![Action::Broadcast {
                msg: Message::Probe,
                range: 10.0,
            }]
        );
    }

    #[test]
    fn dead_node_ignores_everything() {
        let mut rng = SimRng::new(17);
        let mut n = booted_node(&mut rng);
        let cancels = n.kill();
        assert_eq!(cancels.len(), 4);
        assert_eq!(n.mode(), Mode::Dead);
        assert!(n.on_input(t(5.0), Input::WakeUp, &mut rng).is_empty());
        assert!(n
            .on_input(t(6.0), frame(Message::Probe), &mut rng)
            .is_empty());
        assert_eq!(n.mode(), Mode::Dead);
    }

    #[test]
    fn stale_timers_are_ignored() {
        let mut rng = SimRng::new(18);
        let mut n = booted_node(&mut rng);
        // ProbeSend while sleeping: stale.
        assert!(n
            .on_input(t(1.0), Input::ProbeSendTimer, &mut rng)
            .is_empty());
        // ReplyWindow while sleeping: stale.
        assert!(n
            .on_input(t(1.0), Input::ReplyWindowClosed, &mut rng)
            .is_empty());
        // ReplyBackoff while sleeping: stale.
        assert!(n.on_input(t(1.0), Input::ReplyBackoff, &mut rng).is_empty());
        assert_eq!(n.mode(), Mode::Sleeping);
        // WakeUp while working: stale.
        n.on_input(t(2.0), Input::WakeUp, &mut rng);
        n.on_input(t(2.1), Input::ReplyWindowClosed, &mut rng);
        assert_eq!(n.mode(), Mode::Working);
        assert!(n.on_input(t(3.0), Input::WakeUp, &mut rng).is_empty());
        assert_eq!(n.mode(), Mode::Working);
        assert_eq!(n.stats().wakeups, 1);
    }

    #[test]
    fn probing_node_ignores_probes() {
        let mut rng = SimRng::new(19);
        let mut n = booted_node(&mut rng);
        n.on_input(t(10.0), Input::WakeUp, &mut rng);
        let actions = n.on_input(t(10.05), frame(Message::Probe), &mut rng);
        assert!(actions.is_empty());
        assert_eq!(n.stats().probes_heard, 0);
    }

    #[test]
    fn modes_report_radio_state() {
        assert!(!Mode::Sleeping.is_awake());
        assert!(Mode::Probing.is_awake());
        assert!(Mode::Working.is_awake());
        assert!(!Mode::Dead.is_awake());
    }

    #[test]
    fn repeated_wake_sleep_cycles_accumulate_stats() {
        let mut rng = SimRng::new(20);
        let mut n = booted_node(&mut rng);
        let mut now = 0.0;
        for _ in 0..10 {
            now += 50.0;
            n.on_input(t(now), Input::WakeUp, &mut rng);
            n.on_input(t(now + 0.02), Input::ProbeSendTimer, &mut rng);
            n.on_input(t(now + 0.05), frame(reply_msg(Some(0.02), 100)), &mut rng);
            n.on_input(t(now + 0.1), Input::ReplyWindowClosed, &mut rng);
            assert_eq!(n.mode(), Mode::Sleeping);
        }
        assert_eq!(n.stats().wakeups, 10);
        assert_eq!(n.stats().probes_sent, 10);
        assert_eq!(n.stats().replies_heard, 10);
        assert_eq!(n.stats().window_with_reply, 10);
        // λ̂ exactly λd keeps λ fixed.
        assert!((n.rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid PEAS configuration")]
    fn new_rejects_invalid_config() {
        let mut bad = PeasConfig::paper();
        bad.probing_range = -1.0;
        let _ = PeasNode::new(NodeId(0), bad);
    }
}
