//! PEAS control messages.
//!
//! Both messages fit comfortably into the 25-byte control frame of
//! Section 5.1 ("The packet size of PROBE and REPLY messages is 25 bytes,
//! which is enough to hold the information they need to carry").

use peas_des::time::SimDuration;

use crate::rate::RateMeasurement;

/// Frame size used for both PROBE and REPLY (Section 5.1).
pub const CONTROL_FRAME_BYTES: usize = 25;

/// A PEAS control message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Message {
    /// Broadcast by a probing node within its probing range `Rp`
    /// asking "is any working node here?".
    Probe,
    /// Answer from a working node, also sent within `Rp`.
    Reply(Reply),
}

impl Message {
    /// On-air size in bytes.
    pub fn size_bytes(&self) -> usize {
        CONTROL_FRAME_BYTES
    }

    /// Whether this is a PROBE.
    pub fn is_probe(&self) -> bool {
        matches!(self, Message::Probe)
    }

    /// Whether this is a REPLY.
    pub fn is_reply(&self) -> bool {
        matches!(self, Message::Reply(_))
    }
}

/// Payload of a REPLY message.
///
/// Carries the feedback that drives Adaptive Sleeping (Section 2.2) plus the
/// working time `Tw` used by the Section 4 turn-off rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reply {
    /// The sender's current aggregate-rate measurement λ̂, if it has
    /// accumulated `k` PROBEs already.
    pub measured_rate: Option<RateMeasurement>,
    /// The desired aggregate rate λd the sender operates under.
    pub desired_rate: f64,
    /// How long the sender has been working (`Tw`, Section 4); newer
    /// working nodes yield to older ones.
    pub working_time: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::RateMeasurement;

    #[test]
    fn both_messages_are_25_bytes() {
        let probe = Message::Probe;
        let reply = Message::Reply(Reply {
            measured_rate: Some(RateMeasurement::new(0.05)),
            desired_rate: 0.02,
            working_time: SimDuration::from_secs(10),
        });
        assert_eq!(probe.size_bytes(), 25);
        assert_eq!(reply.size_bytes(), 25);
    }

    #[test]
    fn discriminators() {
        assert!(Message::Probe.is_probe());
        assert!(!Message::Probe.is_reply());
        let reply = Message::Reply(Reply {
            measured_rate: None,
            desired_rate: 0.02,
            working_time: SimDuration::ZERO,
        });
        assert!(reply.is_reply());
        assert!(!reply.is_probe());
    }
}
