//! PEAS protocol configuration.

use peas_des::time::SimDuration;

/// Fixed-transmission-power operation (Section 4, "Nodes with fixed
/// transmission power").
///
/// Control frames are transmitted at full power (`tx_range`), and nodes
/// apply a received-signal-strength threshold equivalent to the probing
/// range: a working node reacts only to PROBEs that appear to come from
/// within `Rp`, and a probing node only honours REPLYs that do.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FixedPower {
    /// The radio's fixed transmission range (`Rt`), meters.
    pub tx_range: f64,
}

/// All tunables of the PEAS protocol.
///
/// [`PeasConfig::paper`] reproduces the evaluation settings of Section 5:
/// `Rp` = 3 m, λ₀ = 0.1 /s, λd = 0.02 /s, k = 32, three PROBEs per wakeup
/// and a 100 ms REPLY-collection window.
///
/// # Examples
///
/// ```
/// use peas::PeasConfig;
///
/// let config = PeasConfig::paper();
/// assert_eq!(config.probing_range, 3.0);
/// let custom = PeasConfig::builder()
///     .probing_range(6.0)
///     .desired_rate(0.01)
///     .build();
/// assert_eq!(custom.probing_range, 6.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PeasConfig {
    /// The probing range `Rp` in meters. Working nodes answer PROBEs heard
    /// within this range; it controls working-node density (Section 2.1).
    pub probing_range: f64,
    /// Initial per-node probing rate λ₀ (wakeups/second). Controls how fast
    /// the network acquires working nodes during boot-up.
    pub initial_rate: f64,
    /// Desired *aggregate* probing rate λd perceived by each working node
    /// (wakeups/second); set by the application from its tolerance of
    /// sensing interruptions (Section 2.2).
    pub desired_rate: f64,
    /// Number of PROBEs a working node must count before computing a rate
    /// measurement (`k` in Equation 1; Section 2.2.1 argues k ≥ 16 and the
    /// paper selects 32).
    pub measure_threshold: u32,
    /// PROBE transmissions per wakeup; Section 4 found three sufficient
    /// against loss rates up to 10%.
    pub probe_count: u32,
    /// Interval over which the multiple PROBEs are randomly spread.
    pub probe_spread: SimDuration,
    /// How long a probing node stays awake collecting REPLYs. The paper
    /// waits 100 ms; we use 150 ms so a REPLY that backs off behind the
    /// probe burst and then defers to a busy channel still *completes*
    /// inside the window (backoff base + max backoff + airtime + CSMA
    /// slack). A REPLY that finishes after the window closes is lost and
    /// manufactures a redundant working node.
    pub reply_window: SimDuration,
    /// Base delay before a working node's REPLY: long enough that the
    /// prober's multi-PROBE burst (and its last frame) has finished, so the
    /// half-duplex prober is actually listening. Defaults to
    /// `probe_spread` + one control-frame airtime.
    pub reply_backoff_base: SimDuration,
    /// Maximum random backoff *added* to the base before sending a REPLY,
    /// to reduce collisions among multiple repliers (Section 2.1).
    pub reply_backoff_max: SimDuration,
    /// Enable the Section 4 turn-off rule: a working node overhearing a
    /// REPLY from another working node goes back to sleep if it has been
    /// working for a *shorter* time (`Tw` comparison).
    pub turnoff_enabled: bool,
    /// `Tw` differences at or below this tolerance count as a tie, resolved
    /// by node id (the higher id yields). Without a tie-break two nodes
    /// that started working near-simultaneously — common in the boot wave —
    /// each measure their own `Tw` as larger (REPLY latency) and deadlock
    /// as a redundant pair forever. Must cover the worst-case REPLY latency
    /// (backoff + airtime + retries).
    pub turnoff_tie_epsilon: SimDuration,
    /// Clamp on the per-node probing rate λ, keeping the adaptive rule
    /// numerically sane under measurement noise.
    pub rate_bounds: (f64, f64),
    /// Upper bound on a measurement window's duration: windows also close
    /// after this long with however many PROBEs arrived (see
    /// `RateEstimator::with_max_window`). Keeps λ̂ tracking the *current*
    /// aggregate rate instead of averaging in boot-era probe bursts.
    pub measure_window_max: SimDuration,
    /// Bounds on the multiplicative change a single REPLY may apply to λ:
    /// Equation 2's factor `λd/λ̂` is clamped to `[down, up]`. The bounds
    /// are asymmetric (default halve-at-most, ×8-at-most) because the
    /// dynamics are asymmetric: a node slashed to a very low rate sleeps
    /// so long it can barely receive corrective feedback, so descents must
    /// be gentle while recoveries may be fast.
    pub adjust_factor_bounds: (f64, f64),
    /// Fixed-transmission-power mode; `None` means variable power (nodes
    /// shape their transmissions to exactly `Rp`).
    pub fixed_power: Option<FixedPower>,
}

impl PeasConfig {
    /// The configuration used throughout the paper's evaluation (Section 5).
    pub fn paper() -> PeasConfig {
        PeasConfig {
            probing_range: 3.0,
            initial_rate: 0.1,
            desired_rate: 0.02,
            measure_threshold: 32,
            probe_count: 3,
            probe_spread: SimDuration::from_millis(40),
            reply_window: SimDuration::from_millis(150),
            reply_backoff_base: SimDuration::from_millis(50),
            reply_backoff_max: SimDuration::from_millis(50),
            turnoff_enabled: true,
            turnoff_tie_epsilon: SimDuration::from_millis(500),
            rate_bounds: (1e-5, 10.0),
            measure_window_max: SimDuration::from_secs(400), // 8/λd
            adjust_factor_bounds: (0.5, 8.0),
            fixed_power: None,
        }
    }

    /// Starts a builder from the paper defaults.
    pub fn builder() -> PeasConfigBuilder {
        PeasConfigBuilder {
            config: PeasConfig::paper(),
        }
    }

    /// The range PROBE/REPLY frames are transmitted at: `Rp` under variable
    /// power, `Rt` under fixed power.
    pub fn control_tx_range(&self) -> f64 {
        match self.fixed_power {
            Some(fp) => fp.tx_range,
            None => self.probing_range,
        }
    }

    /// Validates the invariants the protocol relies on.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint: non-positive ranges or rates, `k` or probe count of
    /// zero, a probe spread longer than the reply window (later PROBEs
    /// would fall outside the listen window), inverted rate bounds, or a
    /// fixed-power range smaller than the probing range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.probing_range.is_finite() && self.probing_range > 0.0) {
            return Err(ConfigError("probing_range must be positive"));
        }
        if !(self.initial_rate.is_finite() && self.initial_rate > 0.0) {
            return Err(ConfigError("initial_rate must be positive"));
        }
        if !(self.desired_rate.is_finite() && self.desired_rate > 0.0) {
            return Err(ConfigError("desired_rate must be positive"));
        }
        if self.measure_threshold == 0 {
            return Err(ConfigError("measure_threshold (k) must be at least 1"));
        }
        if self.probe_count == 0 {
            return Err(ConfigError("probe_count must be at least 1"));
        }
        if self.probe_spread > self.reply_window {
            return Err(ConfigError(
                "probe_spread must not exceed reply_window (probes must fit in the listen window)",
            ));
        }
        if self.reply_backoff_base + self.reply_backoff_max > self.reply_window {
            return Err(ConfigError(
                "reply_backoff_base + reply_backoff_max must fit inside reply_window",
            ));
        }
        let (down, up) = self.adjust_factor_bounds;
        if !(down.is_finite() && up.is_finite() && down > 0.0 && down <= 1.0 && up >= 1.0) {
            return Err(ConfigError(
                "adjust_factor_bounds must satisfy 0 < down <= 1 <= up",
            ));
        }
        if self.measure_window_max.is_zero() {
            return Err(ConfigError("measure_window_max must be positive"));
        }
        let (lo, hi) = self.rate_bounds;
        if !(lo > 0.0 && hi.is_finite() && lo < hi) {
            return Err(ConfigError("rate_bounds must satisfy 0 < lo < hi < inf"));
        }
        if !(self.desired_rate >= lo && self.desired_rate <= hi) {
            return Err(ConfigError("desired_rate must lie within rate_bounds"));
        }
        if !(self.initial_rate >= lo && self.initial_rate <= hi) {
            return Err(ConfigError("initial_rate must lie within rate_bounds"));
        }
        if let Some(fp) = self.fixed_power {
            if !(fp.tx_range.is_finite() && fp.tx_range >= self.probing_range) {
                return Err(ConfigError(
                    "fixed-power tx_range must be at least the probing range",
                ));
            }
        }
        Ok(())
    }
}

impl Default for PeasConfig {
    fn default() -> Self {
        PeasConfig::paper()
    }
}

/// A violated [`PeasConfig`] constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigError(&'static str);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid PEAS configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`PeasConfig`], starting from the paper defaults.
#[derive(Clone, Debug)]
pub struct PeasConfigBuilder {
    config: PeasConfig,
}

impl PeasConfigBuilder {
    /// Sets the probing range `Rp` (meters).
    pub fn probing_range(mut self, meters: f64) -> Self {
        self.config.probing_range = meters;
        self
    }

    /// Sets the initial per-node probing rate λ₀ (wakeups/second).
    pub fn initial_rate(mut self, rate: f64) -> Self {
        self.config.initial_rate = rate;
        self
    }

    /// Sets the desired aggregate probing rate λd (wakeups/second).
    pub fn desired_rate(mut self, rate: f64) -> Self {
        self.config.desired_rate = rate;
        self
    }

    /// Sets the measurement threshold `k`.
    pub fn measure_threshold(mut self, k: u32) -> Self {
        self.config.measure_threshold = k;
        self
    }

    /// Sets the number of PROBEs transmitted per wakeup.
    pub fn probe_count(mut self, count: u32) -> Self {
        self.config.probe_count = count;
        self
    }

    /// Sets the spread interval for multiple PROBEs.
    pub fn probe_spread(mut self, spread: SimDuration) -> Self {
        self.config.probe_spread = spread;
        self
    }

    /// Sets the REPLY-collection window length.
    pub fn reply_window(mut self, window: SimDuration) -> Self {
        self.config.reply_window = window;
        self
    }

    /// Sets the maximum REPLY backoff.
    pub fn reply_backoff_max(mut self, backoff: SimDuration) -> Self {
        self.config.reply_backoff_max = backoff;
        self
    }

    /// Sets the base REPLY delay (before the random backoff).
    pub fn reply_backoff_base(mut self, base: SimDuration) -> Self {
        self.config.reply_backoff_base = base;
        self
    }

    /// Sets the per-REPLY rate-adjustment factor bounds `(down, up)`.
    pub fn adjust_factor_bounds(mut self, down: f64, up: f64) -> Self {
        self.config.adjust_factor_bounds = (down, up);
        self
    }

    /// Sets the maximum measurement-window duration.
    pub fn measure_window_max(mut self, window: SimDuration) -> Self {
        self.config.measure_window_max = window;
        self
    }

    /// Enables or disables the Section 4 turn-off rule.
    pub fn turnoff(mut self, enabled: bool) -> Self {
        self.config.turnoff_enabled = enabled;
        self
    }

    /// Sets the `Tw` tie tolerance for the turn-off rule.
    pub fn turnoff_tie_epsilon(mut self, epsilon: SimDuration) -> Self {
        self.config.turnoff_tie_epsilon = epsilon;
        self
    }

    /// Sets the clamp on per-node probing rates.
    pub fn rate_bounds(mut self, lo: f64, hi: f64) -> Self {
        self.config.rate_bounds = (lo, hi);
        self
    }

    /// Switches to fixed transmission power with the given range `Rt`.
    pub fn fixed_power(mut self, tx_range: f64) -> Self {
        self.config.fixed_power = Some(FixedPower { tx_range });
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`PeasConfigBuilder::try_build`] for a fallible version.
    pub fn build(self) -> PeasConfig {
        match self.try_build() {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Finalizes the configuration, returning an error on invalid settings.
    ///
    /// # Errors
    ///
    /// See [`PeasConfig::validate`].
    pub fn try_build(self) -> Result<PeasConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5() {
        let c = PeasConfig::paper();
        assert_eq!(c.probing_range, 3.0);
        assert_eq!(c.initial_rate, 0.1);
        assert_eq!(c.desired_rate, 0.02);
        assert_eq!(c.measure_threshold, 32);
        assert_eq!(c.probe_count, 3);
        assert_eq!(c.reply_window, SimDuration::from_millis(150));
        assert!(c.fixed_power.is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_overrides_fields() {
        let c = PeasConfig::builder()
            .probing_range(6.0)
            .desired_rate(0.01)
            .measure_threshold(16)
            .probe_count(1)
            .turnoff(false)
            .build();
        assert_eq!(c.probing_range, 6.0);
        assert_eq!(c.desired_rate, 0.01);
        assert_eq!(c.measure_threshold, 16);
        assert_eq!(c.probe_count, 1);
        assert!(!c.turnoff_enabled);
    }

    #[test]
    fn control_range_depends_on_power_mode() {
        let variable = PeasConfig::paper();
        assert_eq!(variable.control_tx_range(), 3.0);
        let fixed = PeasConfig::builder().fixed_power(10.0).build();
        assert_eq!(fixed.control_tx_range(), 10.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(PeasConfig::builder()
            .probing_range(0.0)
            .try_build()
            .is_err());
        assert!(PeasConfig::builder()
            .initial_rate(-1.0)
            .try_build()
            .is_err());
        assert!(PeasConfig::builder().desired_rate(0.0).try_build().is_err());
        assert!(PeasConfig::builder()
            .measure_threshold(0)
            .try_build()
            .is_err());
        assert!(PeasConfig::builder().probe_count(0).try_build().is_err());
        assert!(PeasConfig::builder()
            .probe_spread(SimDuration::from_secs(1))
            .try_build()
            .is_err());
        assert!(PeasConfig::builder()
            .rate_bounds(0.0, 1.0)
            .try_build()
            .is_err());
        assert!(PeasConfig::builder()
            .rate_bounds(2.0, 1.0)
            .try_build()
            .is_err());
        // Fixed power must reach at least Rp.
        assert!(PeasConfig::builder().fixed_power(1.0).try_build().is_err());
    }

    #[test]
    fn desired_rate_must_be_within_bounds() {
        let err = PeasConfig::builder()
            .rate_bounds(0.05, 1.0)
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("desired_rate"));
    }

    #[test]
    #[should_panic(expected = "invalid PEAS configuration")]
    fn build_panics_on_invalid() {
        let _ = PeasConfig::builder().probing_range(-3.0).build();
    }

    #[test]
    fn config_error_displays_reason() {
        let e = PeasConfig::builder()
            .probe_count(0)
            .try_build()
            .unwrap_err();
        assert_eq!(
            e.to_string(),
            "invalid PEAS configuration: probe_count must be at least 1"
        );
    }
}
