//! Property-based tests for the Adaptive Sleeping rate adjustment
//! (`peas::adaptive`, Equation 2): for arbitrary — including adversarial —
//! rate states and REPLY sets, the new rate is always a positive, finite
//! number inside the configured bounds, and the fold over REPLYs agrees
//! with the Section 4 "largest λ̂ wins" rule.

use proptest::prelude::*;

use peas::adaptive::{adjusted_rate, rate_from_replies};
use peas::{RateMeasurement, Reply};
use peas_des::time::SimDuration;

fn reply(measured: Option<f64>, desired: f64) -> Reply {
    Reply {
        measured_rate: measured.map(RateMeasurement::new),
        desired_rate: desired,
        working_time: SimDuration::ZERO,
    }
}

/// Positive rates across the full dynamic range the simulator can see,
/// from near-frozen to chattering.
fn arb_rate() -> impl Strategy<Value = f64> {
    1e-9f64..1e9
}

/// Ordered rate bounds `(lo, hi)` with `0 < lo < hi`.
fn arb_bounds() -> impl Strategy<Value = (f64, f64)> {
    (1e-6f64..0.1, 1.0f64..1e4).prop_map(|(lo, scale)| (lo, lo * (1.0 + scale)))
}

/// Factor bounds `(down, up)` with `0 < down <= 1 <= up`.
fn arb_factor_bounds() -> impl Strategy<Value = (f64, f64)> {
    (1e-3f64..1.0, 1.0f64..1e3)
}

/// A REPLY as an adversary could forge it: the measurement (if any) must be
/// constructible (positive finite — `RateMeasurement::new` enforces that),
/// but the desired rate may be garbage: zero, negative, NaN or infinite.
fn arb_adversarial_reply() -> impl Strategy<Value = Reply> {
    let desired = prop_oneof![
        1e-6f64..1.0,
        Just(0.0),
        Just(-0.02),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ];
    (prop::option::of(1e-9f64..1e9), desired).prop_map(|(m, d)| reply(m, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equation 2 never produces NaN, ∞ or a non-positive rate, and always
    /// lands inside the configured rate bounds.
    #[test]
    fn adjusted_rate_is_finite_positive_and_bounded(
        current in arb_rate(),
        desired in arb_rate(),
        measured in arb_rate(),
        bounds in arb_bounds(),
        factor_bounds in arb_factor_bounds(),
    ) {
        let next = adjusted_rate(
            current,
            desired,
            RateMeasurement::new(measured),
            bounds,
            factor_bounds,
        );
        prop_assert!(next.is_finite(), "non-finite rate {next}");
        prop_assert!(next > 0.0, "non-positive rate {next}");
        prop_assert!(
            (bounds.0..=bounds.1).contains(&next),
            "rate {next} escapes bounds {bounds:?}"
        );
    }

    /// A single adjustment step moves the rate by at most the configured
    /// multiplicative factor in either direction (before the absolute
    /// clamp), so one noisy λ̂ can neither freeze nor flood a node.
    #[test]
    fn adjustment_factor_is_bounded(
        current in arb_rate(),
        desired in arb_rate(),
        measured in arb_rate(),
        factor_bounds in arb_factor_bounds(),
    ) {
        // Wide absolute bounds so only the factor clamp is observable.
        let bounds = (1e-30, 1e30);
        let next = adjusted_rate(
            current,
            desired,
            RateMeasurement::new(measured),
            bounds,
            factor_bounds,
        );
        let factor = next / current;
        let (down, up) = factor_bounds;
        prop_assert!(
            factor >= down * (1.0 - 1e-12) && factor <= up * (1.0 + 1e-12),
            "step factor {factor} escapes {factor_bounds:?}"
        );
    }

    /// Folding an arbitrary — possibly adversarial — REPLY set never
    /// aborts and yields a finite positive rate; if no usable REPLY is
    /// present the rate is exactly unchanged.
    #[test]
    fn reply_fold_survives_adversarial_sets(
        current in 1e-6f64..1.0,
        bounds in arb_bounds(),
        factor_bounds in arb_factor_bounds(),
        replies in prop::collection::vec(arb_adversarial_reply(), 0..12),
    ) {
        let next = rate_from_replies(current, bounds, factor_bounds, replies.iter());
        prop_assert!(next.is_finite() && next > 0.0, "bad rate {next}");
        let usable = replies
            .iter()
            .any(|r| r.measured_rate.is_some() && r.desired_rate.is_finite() && r.desired_rate > 0.0);
        if usable {
            prop_assert!(
                (bounds.0..=bounds.1).contains(&next),
                "rate {next} escapes bounds {bounds:?}"
            );
        } else {
            prop_assert_eq!(next, current, "no usable REPLY must keep the rate");
        }
    }

    /// The fold agrees with applying Equation 2 to the largest usable λ̂
    /// (Section 4: several working neighbors → lowest resulting rate).
    #[test]
    fn reply_fold_matches_largest_measurement(
        current in 1e-6f64..1.0,
        bounds in arb_bounds(),
        factor_bounds in arb_factor_bounds(),
        replies in prop::collection::vec(arb_adversarial_reply(), 1..12),
    ) {
        let best = replies
            .iter()
            .filter(|r| r.desired_rate.is_finite() && r.desired_rate > 0.0)
            .filter_map(|r| r.measured_rate.map(|m| (m, r.desired_rate)))
            .max_by(|(a, _), (b, _)| a.partial_cmp(b).expect("measurements are finite"));
        let folded = rate_from_replies(current, bounds, factor_bounds, replies.iter());
        match best {
            Some((m, d)) => prop_assert_eq!(
                folded,
                adjusted_rate(current, d, m, bounds, factor_bounds)
            ),
            None => prop_assert_eq!(folded, current),
        }
    }
}
