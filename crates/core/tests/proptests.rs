//! Property-based tests for the PEAS protocol state machine.

use proptest::prelude::*;

use peas::{Action, Input, Message, Mode, PeasConfig, PeasNode, RateMeasurement, Reply, Timer};
use peas_des::rng::SimRng;
use peas_des::time::{SimDuration, SimTime};
use peas_radio::{NodeId, RxInfo};

fn close_frame(msg: Message) -> Input {
    Input::Frame {
        from: NodeId(7),
        msg,
        info: RxInfo {
            distance: 1.5,
            effective_distance: 1.5,
        },
    }
}

fn reply(measured: Option<f64>, tw_secs: u64) -> Message {
    Message::Reply(Reply {
        measured_rate: measured.map(RateMeasurement::new),
        desired_rate: 0.02,
        working_time: SimDuration::from_secs(tw_secs),
    })
}

/// All the inputs a fuzzer can throw at a node.
fn arb_input() -> impl Strategy<Value = Input> {
    prop_oneof![
        Just(Input::WakeUp),
        Just(Input::ProbeSendTimer),
        Just(Input::ReplyWindowClosed),
        Just(Input::ReplyBackoff),
        Just(close_frame(Message::Probe)),
        (prop::option::of(1e-4f64..1.0), 0u64..10_000)
            .prop_map(|(m, tw)| close_frame(reply(m, tw))),
    ]
}

proptest! {
    /// The node never panics, never goes back from Dead, and its rate stays
    /// within the configured bounds no matter what input sequence arrives.
    #[test]
    fn node_is_total_and_rate_bounded(
        seed in any::<u64>(),
        inputs in prop::collection::vec(arb_input(), 1..200),
        kill_at in prop::option::of(0usize..200),
    ) {
        let config = PeasConfig::paper();
        let (lo, hi) = config.rate_bounds;
        let mut node = PeasNode::new(NodeId(0), config);
        let mut rng = SimRng::new(seed);
        node.start(&mut rng);
        let mut now = SimTime::ZERO;
        for (i, input) in inputs.into_iter().enumerate() {
            if Some(i) == kill_at {
                node.kill();
            }
            now += SimDuration::from_millis(37);
            let _ = node.on_input(now, input, &mut rng);
            prop_assert!(node.rate() >= lo && node.rate() <= hi,
                "rate {} out of bounds", node.rate());
            if kill_at.is_some_and(|k| i >= k) {
                prop_assert_eq!(node.mode(), Mode::Dead);
            }
        }
    }

    /// Scheduled timer delays are always finite and wake delays follow the
    /// current rate (statistically positive).
    #[test]
    fn scheduled_delays_are_well_formed(seed in any::<u64>()) {
        let mut node = PeasNode::new(NodeId(0), PeasConfig::paper());
        let mut rng = SimRng::new(seed);
        for action in node.start(&mut rng) {
            if let Action::Schedule { after, .. } = action {
                prop_assert!(after > SimDuration::ZERO);
                prop_assert!(after < SimDuration::from_secs(10_000_000));
            }
        }
    }

    /// A probing window with at least one REPLY always puts the node back
    /// to sleep; a silent one always promotes it to working.
    #[test]
    fn window_outcome_matches_replies(
        seed in any::<u64>(),
        n_replies in 0usize..5,
        measured in prop::option::of(1e-3f64..0.5),
    ) {
        let mut node = PeasNode::new(NodeId(0), PeasConfig::paper());
        let mut rng = SimRng::new(seed);
        node.start(&mut rng);
        let t0 = SimTime::from_secs(10);
        node.on_input(t0, Input::WakeUp, &mut rng);
        for i in 0..n_replies {
            node.on_input(
                t0 + SimDuration::from_millis(10 + i as u64),
                close_frame(reply(measured, 42)),
                &mut rng,
            );
        }
        node.on_input(t0 + SimDuration::from_millis(100), Input::ReplyWindowClosed, &mut rng);
        if n_replies == 0 {
            prop_assert_eq!(node.mode(), Mode::Working);
        } else {
            prop_assert_eq!(node.mode(), Mode::Sleeping);
        }
    }

    /// Rate adjustment is exact: after hearing one measured REPLY, the new
    /// rate is clamp(λ·λd/λ̂).
    #[test]
    fn adjustment_matches_equation_2(seed in any::<u64>(), measured in 1e-3f64..1.0) {
        let config = PeasConfig::paper();
        let mut node = PeasNode::new(NodeId(0), config.clone());
        let mut rng = SimRng::new(seed);
        node.start(&mut rng);
        let t0 = SimTime::from_secs(5);
        node.on_input(t0, Input::WakeUp, &mut rng);
        node.on_input(t0 + SimDuration::from_millis(20), close_frame(reply(Some(measured), 3)), &mut rng);
        node.on_input(t0 + SimDuration::from_millis(100), Input::ReplyWindowClosed, &mut rng);
        let factor = (config.desired_rate / measured)
            .clamp(config.adjust_factor_bounds.0, config.adjust_factor_bounds.1);
        let expected = (config.initial_rate * factor)
            .clamp(config.rate_bounds.0, config.rate_bounds.1);
        prop_assert!((node.rate() - expected).abs() < 1e-12);
    }

    /// The turn-off rule is one-directional: whichever of two working nodes
    /// has the smaller Tw yields, never the other.
    #[test]
    fn turnoff_is_one_directional(my_tw in 0u64..1_000, other_tw in 0u64..1_000) {
        prop_assume!(my_tw != other_tw);
        let mut node = PeasNode::new(NodeId(0), PeasConfig::paper());
        let mut rng = SimRng::new(1);
        node.start(&mut rng);
        let t0 = SimTime::from_secs(1);
        node.on_input(t0, Input::WakeUp, &mut rng);
        node.on_input(t0 + SimDuration::from_millis(100), Input::ReplyWindowClosed, &mut rng);
        // We are now working; advance the clock by my_tw and overhear a
        // REPLY from a node with other_tw of service.
        let now = t0 + SimDuration::from_millis(100) + SimDuration::from_secs(my_tw);
        node.on_input(now, close_frame(reply(None, other_tw)), &mut rng);
        if my_tw < other_tw {
            prop_assert_eq!(node.mode(), Mode::Sleeping);
        } else {
            prop_assert_eq!(node.mode(), Mode::Working);
        }
    }

    /// Broadcast actions always use the configured control range.
    #[test]
    fn broadcasts_use_control_range(fixed in prop::option::of(5.0f64..20.0)) {
        let mut builder = PeasConfig::builder();
        if let Some(rt) = fixed {
            builder = builder.fixed_power(rt);
        }
        let config = builder.build();
        let expected = config.control_tx_range();
        let mut node = PeasNode::new(NodeId(0), config);
        let mut rng = SimRng::new(9);
        node.start(&mut rng);
        let t0 = SimTime::from_secs(2);
        node.on_input(t0, Input::WakeUp, &mut rng);
        let actions = node.on_input(t0 + SimDuration::from_millis(5), Input::ProbeSendTimer, &mut rng);
        for a in actions {
            if let Action::Broadcast { range, .. } = a {
                prop_assert_eq!(range, expected);
            }
        }
    }

    /// Wakeup counting: every Sleeping->Probing transition increments the
    /// wakeups counter exactly once (Figures 11/14 depend on this).
    #[test]
    fn wakeups_count_transitions(cycles in 1usize..30) {
        let mut node = PeasNode::new(NodeId(0), PeasConfig::paper());
        let mut rng = SimRng::new(5);
        node.start(&mut rng);
        let mut now = SimTime::ZERO;
        for _ in 0..cycles {
            now += SimDuration::from_secs(50);
            node.on_input(now, Input::WakeUp, &mut rng);
            prop_assert_eq!(node.mode(), Mode::Probing);
            node.on_input(now + SimDuration::from_millis(10), close_frame(reply(None, 1)), &mut rng);
            node.on_input(now + SimDuration::from_millis(100), Input::ReplyWindowClosed, &mut rng);
            prop_assert_eq!(node.mode(), Mode::Sleeping);
        }
        prop_assert_eq!(node.stats().wakeups, cycles as u64);
        prop_assert_eq!(node.stats().window_with_reply, cycles as u64);
    }

    /// Timer identity: every Schedule action names a timer consistent with
    /// the mode the node is in when emitting it.
    #[test]
    fn schedules_match_mode(seed in any::<u64>()) {
        let mut node = PeasNode::new(NodeId(0), PeasConfig::paper());
        let mut rng = SimRng::new(seed);
        let boot = node.start(&mut rng);
        let all_wake = boot
            .iter()
            .all(|a| matches!(a, Action::Schedule { timer: Timer::Wake, .. }));
        prop_assert!(all_wake);
        let t0 = SimTime::from_secs(1);
        let wake_actions = node.on_input(t0, Input::WakeUp, &mut rng);
        let all_probing_timers = wake_actions.iter().all(|a| {
            matches!(
                a,
                Action::Schedule {
                    timer: Timer::ProbeSend | Timer::ReplyWindow,
                    ..
                }
            )
        });
        prop_assert!(all_probing_timers);
    }
}
