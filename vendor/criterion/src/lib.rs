//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Network-isolated builds cannot fetch the real criterion, so this stub
//! implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! and the `criterion_group!`/`criterion_main!` macros — with plain
//! wall-clock timing and a one-line report per benchmark. No statistics,
//! no HTML reports; enough for `cargo bench` to run every bench and print
//! comparable medians.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup between measurements. Only a hint
/// here; the stub always runs one routine call per setup call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (report flushing is immediate in this stub).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("bench {id:<50} (no measurement)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "bench {id:<50} median {:>12.3?} over {} samples",
        median,
        samples.len()
    );
}

/// Per-benchmark measurement handle.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// included in the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` invoking the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
