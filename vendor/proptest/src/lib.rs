//! Offline, deterministic stand-in for the `proptest` crate.
//!
//! The real proptest cannot be fetched in network-isolated build
//! environments, so this vendored stub reimplements the (small) API subset
//! the workspace's property tests use: the [`Strategy`] trait over ranges,
//! tuples, collections and options, the `proptest!` test-harness macro and
//! the `prop_assert*` family. Generation is purposely simple — uniform
//! draws from a per-test deterministic RNG, no shrinking — which keeps the
//! tests reproducible run-to-run and machine-to-machine.

pub mod test_runner {
    //! Config, error type and the deterministic RNG driving generation.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a [`TestCaseError::Fail`] from any message.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a [`TestCaseError::Reject`] from any message.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// SplitMix64 generator seeded from the test's module path, so every
    /// test sees its own reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary string (FNV-1a).
        pub fn deterministic(name: &str) -> TestRng {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy is just a deterministic sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed variants (backs `prop_oneof!`).
    pub struct Union<V> {
        variants: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics if `variants` is empty.
        pub fn new(variants: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
            Union { variants }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.variants.len() as u64) as usize;
            self.variants[idx].generate(rng)
        }
    }

    /// Boxes a strategy, unifying heterogeneous variants for [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty float range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty float range strategy");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the handful of types the tests draw unbounded.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type `any` returns.
        type Strategy: Strategy<Value = Self>;
        /// The full-domain strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for `T` (marker struct).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy covering `T`'s whole domain.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(std::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any(std::marker::PhantomData)
        }
    }
}

pub mod collection {
    //! `prop::collection::vec`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `prop::option::of`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`: `None` half the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner`'s values in `Some`, interleaved with `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod bool {
    //! `prop::bool::ANY`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy (unit struct).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// Either boolean with equal probability.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test file needs, mirroring
    //! `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Namespace of sub-strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `config.cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).max(1024),
                            "{}: too many prop_assume! rejections", stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {}/{} of {} failed: {}",
                               accepted + 1, config.cases, stringify!($name), msg);
                    }
                }
            }
        }
    )*};
}

/// `assert!` that fails the current generated case instead of panicking
/// directly (must run inside a [`proptest!`] body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: `{:?} == {:?}`", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// `assert_ne!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} != {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: `{:?} != {:?}`", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Skips the current generated case when its inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($variant:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($variant)),+])
    };
}
